"""Unified telemetry: tracing spans + metrics + profiler export.

The measurement substrate the paper's §3-§4 methodology needs: TAU-style
hierarchical spans with exclusive-time accounting, a process-wide
metrics registry (counters/gauges/histograms), and exporters for the
per-kernel profile table, JSON snapshots, and §9 ASCII monitor files.

Two backends share one API:

* :class:`Telemetry` — the recording backend,
* :class:`NullTelemetry` — a no-op backend whose spans and instruments
  do nothing, so instrumented hot paths cost essentially nothing when
  telemetry is off.

Backend selection: an explicit instance passed to a component always
wins; otherwise the process default from :func:`get_telemetry` applies,
which is the null backend unless the environment variable
``REPRO_TELEMETRY`` is truthy (``1``/``on``/``true``/``yes``) or
:func:`configure` was called.
"""

from __future__ import annotations

import functools
import os

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
)
from repro.telemetry.spans import SpanStats, Tracer
from repro.telemetry.tracing import (
    TraceContext,
    TraceEvent,
    TraceLog,
    resolve_tracing,
)
from repro.telemetry import export
from repro.telemetry.export import (
    MonitorWriter,
    from_json,
    parse_monitor_text,
    parse_profile_report,
    profile_report,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "Tracer",
    "SpanStats",
    "TraceContext",
    "TraceEvent",
    "TraceLog",
    "resolve_tracing",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "MonitorWriter",
    "profile_report",
    "parse_profile_report",
    "parse_monitor_text",
    "from_json",
    "configure",
    "get_telemetry",
    "set_default",
    "resolve",
]


class Telemetry:
    """Recording telemetry backend: one tracer + one metrics registry.

    Parameters
    ----------
    clock:
        Injectable clock for the tracer (tests pass a fake).
    tracing:
        Distributed-tracing mode. ``True`` attaches a
        :class:`~repro.telemetry.tracing.TraceLog` so spans and
        transport messages record causal trace events; ``None``
        (default) defers to the ``REPRO_TRACING`` environment switch;
        ``False`` forces it off regardless of the environment.
    rank:
        Event lane for this backend's trace log (rank programs pass
        their rank; the default is the driver lane).
    """

    enabled = True

    def __init__(self, clock=None, tracing=None, rank=None):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock, metrics=self.metrics)
        self.tracelog = None
        self._delta_base: dict | None = None
        if resolve_tracing(tracing):
            self.enable_tracing(rank=rank)

    @property
    def tracing(self) -> bool:
        """Whether distributed tracing is attached."""
        return self.tracelog is not None

    def enable_tracing(self, rank=None):
        """Attach a trace log (idempotent); returns it. Spans recorded
        from now on also produce causal trace events, and transports
        holding this backend start piggybacking trace contexts."""
        if self.tracelog is None:
            from repro.telemetry.tracing import DRIVER_RANK, TraceLog

            self.tracelog = TraceLog(
                clock=self.tracer.clock,
                rank=DRIVER_RANK if rank is None else int(rank),
            )
            self.tracer.tracelog = self.tracelog
            self.tracer.trace_rank = self.tracelog.rank
        return self.tracelog

    # -- tracing ---------------------------------------------------------
    def span(self, name: str, **counters):
        """Context manager timing ``name``; kwargs increment counters
        named ``<name>.<key>`` on exit."""
        return self.tracer.span(name, **counters)

    def trace(self, name: str | None = None):
        """Decorator wrapping a callable in a span (default: its name)."""

        def deco(fn):
            span_name = name or fn.__name__

            @functools.wraps(fn)
            def wrapped(*args, **kwargs):
                with self.tracer.span(span_name):
                    return fn(*args, **kwargs)

            return wrapped

        return deco

    # -- metrics ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        return self.metrics.histogram(name, buckets=buckets)

    # -- export ----------------------------------------------------------
    def profile_report(self, title: str = "per-kernel exclusive time") -> str:
        return export.profile_report(self.tracer, title=title)

    def snapshot(self, delta: bool = False) -> dict:
        """Plain-data view of tracer + metrics state.

        With ``delta=True`` the view only contains what changed since
        the previous ``snapshot(delta=True)`` call (the whole state on
        the first call), which is what the flight recorder appends per
        step instead of an ever-growing full dump.
        """
        if not delta:
            return export.snapshot(self)
        base = self._delta_base or {"spans": {}, "paths": {},
                                    "metrics": {"counters": {}, "gauges": {},
                                                "histograms": {}}}
        out = self.tracer.snapshot_delta(base)
        out["metrics"] = self.metrics.snapshot_delta(base["metrics"])
        self._delta_base = export.snapshot(self)
        return out

    def merge(self, other) -> "Telemetry":
        """Fold another backend's aggregates into this one (in place).

        Associative with the fresh/null backend as identity; disabled
        backends contribute nothing. Returns ``self``.
        """
        if getattr(other, "enabled", False):
            self.tracer.merge(other.tracer)
            self.metrics.merge(other.metrics)
        return self

    def to_json(self, indent: int | None = None) -> str:
        return export.to_json(self, indent=indent)

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        if self.tracelog is not None:
            self.tracelog.reset()
        self._delta_base = None


class _NullSpan:
    """Shared no-op context manager (zero allocation per span)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


class _NullInstrument:
    """No-op counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    value = 0.0
    count = 0
    total = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class _NullMetricsRegistry:
    """Registry facade whose instruments are shared no-ops."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


class _NullTracer:
    """Tracer facade that records nothing."""

    stats: dict = {}
    path_stats: dict = {}
    depth = 0
    current_path = ""

    def span(self, name: str, **counters) -> _NullSpan:
        return _NULL_SPAN

    def exclusive_times(self) -> dict:
        return {}

    def inclusive_times(self) -> dict:
        return {}

    def call_counts(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"spans": {}, "paths": {}}

    def reset(self) -> None:
        pass


class NullTelemetry:
    """Disabled backend: every operation is a no-op.

    A single shared instance (:data:`NULL_TELEMETRY`) is enough; the
    class is stateless.
    """

    enabled = False
    tracing = False
    tracelog = None

    def __init__(self):
        self.metrics = _NullMetricsRegistry()
        self.tracer = _NullTracer()

    def span(self, name: str, **counters) -> _NullSpan:
        return _NULL_SPAN

    def trace(self, name: str | None = None):
        def deco(fn):
            return fn

        return deco

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def profile_report(self, title: str = "per-kernel exclusive time") -> str:
        return ""

    def snapshot(self, delta: bool = False) -> dict:
        return {"spans": {}, "paths": {}, "metrics": self.metrics.snapshot()}

    def merge(self, other) -> "NullTelemetry":
        return self

    def to_json(self, indent: int | None = None) -> str:
        return export.to_json(self, indent=indent)

    def reset(self) -> None:
        pass


#: the shared disabled backend
NULL_TELEMETRY = NullTelemetry()

_TRUTHY = ("1", "on", "true", "yes")
_default: object | None = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUTHY


def get_telemetry():
    """The process-default telemetry backend.

    Null unless ``REPRO_TELEMETRY`` is truthy at first use or
    :func:`configure`/:func:`set_default` installed a backend.
    """
    global _default
    if _default is None:
        _default = Telemetry() if _env_enabled() else NULL_TELEMETRY
    return _default


def set_default(telemetry) -> None:
    """Install ``telemetry`` as the process default (None = re-read env)."""
    global _default
    _default = telemetry


def configure(enabled: bool = True):
    """Create and install a fresh default backend; returns it."""
    tel = Telemetry() if enabled else NULL_TELEMETRY
    set_default(tel)
    return tel


def resolve(telemetry=None):
    """Resolution used by instrumented components: explicit instance
    wins, otherwise the process default."""
    return telemetry if telemetry is not None else get_telemetry()
