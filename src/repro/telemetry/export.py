"""Telemetry exporters: TAU-style profiles, JSON, §9 monitor files.

Three output formats:

* :func:`profile_report` — the per-kernel exclusive-time table the
  paper's TAU profiles reduce to (Fig 2): percent of traced time,
  exclusive/inclusive milliseconds, call counts, one row per kernel.
  :func:`parse_profile_report` reads the table back (round-trip tested).
* :func:`to_json` / :func:`from_json` — a lossless plain-data snapshot
  of tracer and metrics state.
* :class:`MonitorWriter` — per-step ASCII monitoring lines in the
  format of the paper's §9 min/max files; each data row is
  ``step variable min max time`` so the workflow's
  :class:`~repro.workflow.actors.MinMaxParser` consumes it unchanged.
"""

from __future__ import annotations

import json

#: column layout of the TAU-style table
_HEADER = f"{'%Time':>7s} {'excl[ms]':>12s} {'incl[ms]':>12s} {'calls':>10s}  name"
_RULE = "-" * len(_HEADER)


def profile_report(tracer, title: str = "per-kernel exclusive time") -> str:
    """TAU-style flat profile from a :class:`~repro.telemetry.spans.Tracer`.

    Rows are sorted by exclusive time (descending, name as tiebreak);
    percentages are of the total *exclusive* time, which — unlike
    inclusive time — sums to the wall time actually traced.
    """
    stats = tracer.stats
    if not stats:
        return ""
    total_excl = sum(s.exclusive for s in stats.values()) or 1.0
    rows = sorted(stats.values(), key=lambda s: (-s.exclusive, s.name))
    lines = [title, _RULE, _HEADER, _RULE]
    for s in rows:
        lines.append(
            f"{100.0 * s.exclusive / total_excl:>6.1f}% "
            f"{s.exclusive * 1e3:>12.4f} {s.inclusive * 1e3:>12.4f} "
            f"{s.count:>10d}  {s.name}"
        )
    lines.append(_RULE)
    return "\n".join(lines)


def parse_profile_report(text: str) -> dict:
    """Inverse of :func:`profile_report` (to formatting precision).

    Returns ``{name: {"percent", "exclusive", "inclusive", "calls"}}``
    with times in seconds.
    """
    out: dict = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) < 5 or not parts[0].endswith("%"):
            continue
        name = " ".join(parts[4:])
        out[name] = {
            "percent": float(parts[0].rstrip("%")),
            "exclusive": float(parts[1]) / 1e3,
            "inclusive": float(parts[2]) / 1e3,
            "calls": int(parts[3]),
        }
    return out


def snapshot(telemetry) -> dict:
    """Combined plain-data snapshot of a telemetry instance.

    With distributed tracing attached the snapshot also carries the
    raw event stream under ``"trace"`` — the unit
    :func:`repro.observability.timeline.stitch` consumes; consumers of
    the aggregate tables (profile fusion, flight recorder) ignore it.
    """
    out = telemetry.tracer.snapshot()
    out["metrics"] = telemetry.metrics.snapshot()
    tracelog = getattr(telemetry, "tracelog", None)
    if tracelog is not None:
        out["trace"] = tracelog.snapshot()
    return out


def to_json(telemetry, indent: int | None = None) -> str:
    """Serialize a telemetry snapshot to JSON (keys sorted)."""
    return json.dumps(snapshot(telemetry), sort_keys=True, indent=indent)


def from_json(text: str) -> dict:
    """Parse a snapshot produced by :func:`to_json`."""
    return json.loads(text)


class MonitorWriter:
    """Per-step ASCII monitoring writer (§9 min/max files).

    Each recorded step appends one line per variable::

        step variable min max time

    which is exactly what the workflow's ``MinMaxParser`` splits (it
    reads columns 0-3 and tolerates the trailing time column). Lines go
    to ``stream`` (any object with ``write``) when given, and are always
    retained in :attr:`lines` for in-memory consumption.
    """

    def __init__(self, stream=None):
        self.stream = stream
        self.lines: list = []
        self.steps_recorded = 0

    def format_step(self, step: int, time: float, min_max: dict) -> list:
        return [
            f"{step:8d} {name:<24s} {lo:23.15e} {hi:23.15e} {time:23.15e}"
            for name, (lo, hi) in min_max.items()
        ]

    def write_step(self, step: int, time: float, min_max: dict) -> list:
        """Record one step's min/max map; returns the lines written."""
        lines = self.format_step(step, time, min_max)
        self.lines.extend(lines)
        if self.stream is not None:
            self.stream.write("\n".join(lines) + "\n")
        self.steps_recorded += 1
        return lines

    def text(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")


def parse_monitor_text(text: str) -> list:
    """Parse monitor lines into dict rows (mirrors ``MinMaxParser``)."""
    rows = []
    for line in text.splitlines():
        parts = line.split()
        if len(parts) >= 4:
            rows.append(
                {
                    "step": int(parts[0]),
                    "variable": parts[1],
                    "min": float(parts[2]),
                    "max": float(parts[3]),
                }
            )
    return rows
