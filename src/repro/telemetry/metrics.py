"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is the quantitative half of the telemetry substrate (the
tracer in :mod:`repro.telemetry.spans` is the temporal half). It keeps
three instrument kinds, mirroring what the paper's measurement campaign
actually records:

* **counters** — monotonically accumulating totals (bytes exchanged in
  halo sweeps, bytes written per checkpoint, stage-1 flush counts),
* **gauges** — last-written values (current dt, current load imbalance),
* **histograms** — fixed-bucket distributions (file-open times,
  per-phase write times), cheap enough for per-request observation.

All instruments are plain Python objects with no locking; the solver is
single-threaded per rank, exactly like S3D's per-process TAU buffers.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field


@dataclass
class Counter:
    """Monotonic accumulator."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Last-value instrument."""

    name: str
    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


#: default histogram bucket upper bounds [s] — spans open times (~ms)
#: through long collective writes (~minutes)
DEFAULT_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 60.0
)


@dataclass
class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` holds ascending upper bounds; an implicit final bucket
    catches everything above the last bound. ``counts[i]`` counts
    observations with ``value <= buckets[i]`` (first matching bucket),
    ``counts[-1]`` the overflow.
    """

    name: str
    buckets: tuple = DEFAULT_BUCKETS
    counts: list = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        self.buckets = tuple(float(b) for b in self.buckets)
        if list(self.buckets) != sorted(self.buckets) or len(set(self.buckets)) != len(self.buckets):
            raise ValueError(f"histogram {self.name!r} buckets must be strictly ascending")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list:
        """Cumulative counts per bucket (last entry == ``count``)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Named collection of counters, gauges, and histograms.

    Instruments are created on first use and live for the registry's
    lifetime; iteration and snapshots are sorted by name so output is
    deterministic regardless of creation order.
    """

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # -- access ----------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets=tuple(buckets))
        elif h.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} re-registered with different buckets"
            )
        return h

    # -- introspection ---------------------------------------------------
    @property
    def counters(self) -> dict:
        return {k: self._counters[k] for k in sorted(self._counters)}

    @property
    def gauges(self) -> dict:
        return {k: self._gauges[k] for k in sorted(self._gauges)}

    @property
    def histograms(self) -> dict:
        return {k: self._histograms[k] for k in sorted(self._histograms)}

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-serializable)."""
        return {
            "counters": {k: c.value for k, c in self.counters.items()},
            "gauges": {k: g.value for k, g in self.gauges.items()},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for k, h in self.histograms.items()
            },
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry (in place).

        The merge is associative and commutative on counters (sums) and
        histograms (element-wise bucket sums; bucket layouts must
        agree), with the empty registry as identity. Gauges are
        last-value instruments with no meaningful sum, so the merged
        value is the *max* (associative; the conservative choice for
        the imbalance-style gauges recorded here) and ``updates``
        accumulate. Returns ``self`` for chaining.
        """
        for name, c in other._counters.items():
            self.counter(name).value += c.value
        for name, g in other._gauges.items():
            mine = self.gauge(name)
            if g.updates:
                mine.value = g.value if not mine.updates else max(mine.value, g.value)
            mine.updates += g.updates
        for name, h in other._histograms.items():
            mine = self.histogram(name, buckets=h.buckets)
            for i, n in enumerate(h.counts):
                mine.counts[i] += n
            mine.total += h.total
            mine.count += h.count
        return self

    def snapshot_delta(self, baseline: dict) -> dict:
        """Difference between the current :meth:`snapshot` and a prior
        one — only instruments that changed appear, with counters and
        histogram counts/sums as increments and gauges at their current
        value (a gauge is included when its value differs)."""
        cur = self.snapshot()
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        base_c = baseline.get("counters", {})
        for k, v in cur["counters"].items():
            dv = v - base_c.get(k, 0.0)
            if dv:
                out["counters"][k] = dv
        base_g = baseline.get("gauges", {})
        for k, v in cur["gauges"].items():
            if k not in base_g or base_g[k] != v:
                out["gauges"][k] = v
        base_h = baseline.get("histograms", {})
        for k, h in cur["histograms"].items():
            prev = base_h.get(k)
            if prev is None:
                if h["count"]:
                    out["histograms"][k] = h
                continue
            dcount = h["count"] - prev["count"]
            if dcount:
                out["histograms"][k] = {
                    "buckets": h["buckets"],
                    "counts": [a - b for a, b in zip(h["counts"], prev["counts"])],
                    "sum": h["sum"] - prev["sum"],
                    "count": dcount,
                }
        return out

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
