"""Hierarchical tracing spans with TAU-style exclusive-time accounting.

A *span* is one timed region of code; spans nest, and the tracer keeps
the two aggregates TAU's per-kernel profiles are built from (§4):

* **inclusive** time — wall time between span entry and exit,
* **exclusive** time — inclusive time minus the inclusive time of the
  span's direct children (the time actually spent *in* the kernel).

Aggregation happens twice: per span *name* (the flat per-kernel profile
of Fig 2) and per call *path* (``integrate/DERIVATIVES``), so the report
can show both the flat table and the call tree.

The tracer takes an injectable clock so exclusive-time arithmetic is
testable deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class SpanStats:
    """Aggregated timing for one span name (or call path)."""

    name: str
    count: int = 0
    inclusive: float = 0.0
    exclusive: float = 0.0

    @property
    def mean_inclusive(self) -> float:
        return self.inclusive / self.count if self.count else 0.0


class _SpanHandle:
    """Context manager for one active span (created per entry)."""

    __slots__ = ("tracer", "name", "counters")

    def __init__(self, tracer: "Tracer", name: str, counters: dict):
        self.tracer = tracer
        self.name = name
        self.counters = counters

    def __enter__(self) -> "_SpanHandle":
        self.tracer._begin(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._end(self.counters)


class Tracer:
    """Records nested spans and aggregates inclusive/exclusive times.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds (default
        ``time.perf_counter``); injectable for deterministic tests.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`; span
        keyword counters (``span("halo", bytes=n)``) increment counters
        named ``<span>.<key>`` there on exit.
    """

    def __init__(self, clock=None, metrics=None):
        self.clock = clock or time.perf_counter
        self.metrics = metrics
        #: active stack of [name, path, start, child_inclusive] — a
        #: fifth slot (the trace-event id) appears when tracing is on
        self._stack: list = []
        self.stats: dict = {}       # name -> SpanStats
        self.path_stats: dict = {}  # "a/b/c" -> SpanStats
        #: optional :class:`~repro.telemetry.tracing.TraceLog`; when
        #: set, every span also records a causal trace event on lane
        #: ``trace_rank`` (the driver lane by default — transports
        #: retarget it while running a rank's program)
        self.tracelog = None
        self.trace_rank = -1

    # -- recording -------------------------------------------------------
    def span(self, name: str, **counters) -> _SpanHandle:
        """Context manager timing ``name``; keyword values become
        counter increments (``<name>.<key>``) on successful exit."""
        return _SpanHandle(self, name, counters)

    def _begin(self, name: str) -> None:
        path = f"{self._stack[-1][1]}/{name}" if self._stack else name
        entry = [name, path, self.clock(), 0.0]
        if self.tracelog is not None:
            entry.append(self.tracelog.begin_span(name, self.trace_rank))
        self._stack.append(entry)

    def _end(self, counters: dict | None = None) -> float:
        if not self._stack:
            raise RuntimeError("span end without matching begin")
        entry = self._stack.pop()
        name, path, start, child = entry[0], entry[1], entry[2], entry[3]
        if len(entry) == 5 and self.tracelog is not None:
            self.tracelog.end_span(entry[4])
        duration = self.clock() - start
        for table, key in ((self.stats, name), (self.path_stats, path)):
            s = table.get(key)
            if s is None:
                s = table[key] = SpanStats(key)
            s.count += 1
            s.inclusive += duration
            s.exclusive += duration - child
        if self._stack:
            self._stack[-1][3] += duration
        if counters and self.metrics is not None:
            for key, amount in counters.items():
                self.metrics.counter(f"{name}.{key}").inc(amount)
        return duration

    # -- introspection ---------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current_path(self) -> str:
        return self._stack[-1][1] if self._stack else ""

    def exclusive_times(self) -> dict:
        """Flat per-name exclusive seconds (deterministic name order)."""
        return {k: self.stats[k].exclusive for k in sorted(self.stats)}

    def inclusive_times(self) -> dict:
        return {k: self.stats[k].inclusive for k in sorted(self.stats)}

    def call_counts(self) -> dict:
        return {k: self.stats[k].count for k in sorted(self.stats)}

    def snapshot(self) -> dict:
        """Plain-data view (JSON-serializable), names sorted."""

        def table(d):
            return {
                k: {
                    "count": d[k].count,
                    "inclusive": d[k].inclusive,
                    "exclusive": d[k].exclusive,
                }
                for k in sorted(d)
            }

        return {"spans": table(self.stats), "paths": table(self.path_stats)}

    def merge(self, other: "Tracer") -> "Tracer":
        """Fold ``other``'s aggregates into this tracer (in place).

        Span counts and inclusive/exclusive times sum per name and per
        path, so the merge is associative and commutative with the
        empty tracer as identity. ``other`` must have no active spans.
        Returns ``self`` for chaining.
        """
        if other._stack:
            raise RuntimeError("cannot merge a tracer with active spans")
        for mine, theirs in ((self.stats, other.stats),
                             (self.path_stats, other.path_stats)):
            for key, s in theirs.items():
                m = mine.get(key)
                if m is None:
                    m = mine[key] = SpanStats(key)
                m.count += s.count
                m.inclusive += s.inclusive
                m.exclusive += s.exclusive
        return self

    def snapshot_delta(self, baseline: dict) -> dict:
        """Difference between the current :meth:`snapshot` and a prior
        one; only spans whose counts advanced appear."""
        cur = self.snapshot()
        out = {}
        for table in ("spans", "paths"):
            base = baseline.get(table, {})
            diff = {}
            for k, row in cur[table].items():
                prev = base.get(k, {"count": 0, "inclusive": 0.0, "exclusive": 0.0})
                dcount = row["count"] - prev["count"]
                if dcount:
                    diff[k] = {
                        "count": dcount,
                        "inclusive": row["inclusive"] - prev["inclusive"],
                        "exclusive": row["exclusive"] - prev["exclusive"],
                    }
            out[table] = diff
        return out

    def reset(self) -> None:
        if self._stack:
            raise RuntimeError("cannot reset tracer with active spans")
        self.stats.clear()
        self.path_stats.clear()
