"""Distributed trace events with cross-rank causal propagation.

This is the *temporal-causal* layer of the telemetry substrate: where
:mod:`repro.telemetry.spans` aggregates durations into per-name
statistics, the :class:`TraceLog` keeps the individual events — every
span, every message-plane send and receive — each with a unique id, a
causal parent link, and a Lamport logical clock, so per-rank event
streams recorded on different processes stitch back into one global
causally-ordered timeline (:mod:`repro.observability.timeline`).

Three event kinds:

* ``span`` — a named interval on one rank (wall-clock start/duration,
  parent = the enclosing span on the same rank),
* ``send`` — a message leaving a rank; recording one returns the
  :class:`TraceContext` the transport piggybacks on the message,
* ``recv`` — a message arriving; its parent is the matching send, and
  its logical clock is advanced past the carried context so causality
  survives rank boundaries (``logical(send) < logical(recv)`` always).

Clock discipline follows the classic recipe: every event ticks its
rank's Lamport counter; a receive first raises the counter above the
sender's carried value. Wall-clock timestamps are monotonic *within* a
rank (``time.perf_counter``) but never compared across ranks — ordering
across ranks is the logical clock's job, duration the wall clock's.

The context that crosses the wire is deliberately tiny — ``(id,
logical)``, two integers — and rides *beside* the payload (a sidecar
queue in the local transports, a pickled tuple on mpi4py), so enabling
tracing is bitwise-invisible to every array a solver exchanges.
"""

from __future__ import annotations

import os
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = [
    "DRIVER_RANK",
    "TRACING_ENV",
    "TraceContext",
    "TraceEvent",
    "TraceLog",
    "classify_tag",
    "resolve_tracing",
]

#: environment switch for the tracing mode (same truthy set as
#: ``REPRO_TELEMETRY``)
TRACING_ENV = "REPRO_TRACING"

#: lane used for events recorded by the driver process itself (rank
#: programs use their real rank ids >= 0)
DRIVER_RANK = -1

_TRUTHY = ("1", "on", "true", "yes")


def resolve_tracing(tracing=None) -> bool:
    """Resolve the tracing mode: explicit argument wins, ``None`` defers
    to the ``REPRO_TRACING`` environment switch."""
    if tracing is None:
        return os.environ.get(TRACING_ENV, "").strip().lower() in _TRUTHY
    return bool(tracing)


#: message-name classification by tag range: chemlb replies come back on
#: ``TAG_RESULT + seq`` (>= 50700), shipments go out on ``TAG_SHIP +
#: seq`` (700 <= tag < 9102), profile fusion gathers on FUSION_TAG
#: (9102), and halo traffic uses small face tags (< 100)
def classify_tag(tag: int) -> str:
    """Human-readable message category for a transport tag."""
    tag = int(tag)
    if tag >= 50700:
        return "chemlb.reply"
    if tag == 9102:
        return "profile.fusion"
    if 700 <= tag < 9102:
        return "chemlb.ship"
    if 0 <= tag < 100:
        return "halo"
    return "message"


class TraceContext(NamedTuple):
    """The compact context piggybacked on a message: the send event's
    id (the receive's causal parent) and the sender's logical clock."""

    id: int
    logical: int


@dataclass
class TraceEvent:
    """One recorded event. ``duration`` is zero for sends/recvs;
    ``parent`` is the enclosing span (spans, sends) or the matching
    send event (recvs), ``None`` at the root."""

    kind: str          # "span" | "send" | "recv"
    name: str
    rank: int
    start: float       # wall clock [s], monotonic within the rank
    duration: float    # wall clock [s]
    logical: int       # Lamport clock value at the event
    seq: int           # per-rank monotone sequence number
    id: int
    parent: int | None = None
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "name": self.name,
            "rank": self.rank,
            "start": self.start,
            "duration": self.duration,
            "logical": self.logical,
            "seq": self.seq,
            "id": self.id,
            "parent": self.parent,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        return cls(
            kind=d["kind"], name=d["name"], rank=int(d["rank"]),
            start=float(d["start"]), duration=float(d["duration"]),
            logical=int(d["logical"]), seq=int(d["seq"]), id=int(d["id"]),
            parent=d.get("parent"), attrs=dict(d.get("attrs", {})),
        )


class TraceLog:
    """Per-process event log with per-rank Lamport clocks.

    One log serves every rank the process records for: the driver's log
    carries its own lane (:data:`DRIVER_RANK`) plus — on the in-process
    transport — the lanes of every rank program it runs; a
    worker-resident log carries exactly its own rank. Ids are unique
    within a log; :func:`repro.observability.timeline.stitch` renumbers
    them when logs from several processes are combined.
    """

    def __init__(self, clock=None, rank: int = DRIVER_RANK):
        self.clock = clock if clock is not None else time.perf_counter
        self.rank = int(rank)
        self.events: list = []
        self._clocks: dict = defaultdict(int)      # rank -> Lamport clock
        self._seqs: dict = defaultdict(int)        # rank -> next seq
        self._open: dict = {}                      # id -> open span event
        self._span_stack: dict = defaultdict(list)  # rank -> open span ids
        self._next_id = 1

    # -- internals -------------------------------------------------------
    def _new_id(self) -> int:
        i = self._next_id
        self._next_id = i + 1
        return i

    def _tick(self, rank: int, floor: int = 0) -> int:
        c = max(self._clocks[rank], floor) + 1
        self._clocks[rank] = c
        return c

    def _next_seq(self, rank: int) -> int:
        s = self._seqs[rank]
        self._seqs[rank] = s + 1
        return s

    def _enclosing(self, rank: int):
        stack = self._span_stack.get(rank)
        return stack[-1] if stack else None

    # -- spans -----------------------------------------------------------
    def begin_span(self, name: str, rank: int | None = None) -> int:
        """Open a span on ``rank`` (default: the log's own lane);
        returns the span id to hand back to :meth:`end_span`."""
        rank = self.rank if rank is None else int(rank)
        sid = self._new_id()
        ev = TraceEvent(
            kind="span", name=name, rank=rank, start=self.clock(),
            duration=0.0, logical=self._tick(rank),
            seq=self._next_seq(rank), id=sid,
            parent=self._enclosing(rank),
        )
        self._open[sid] = ev
        self._span_stack[rank].append(sid)
        return sid

    def end_span(self, span_id: int, **attrs) -> TraceEvent:
        """Close an open span; keyword arguments land in ``attrs``."""
        ev = self._open.pop(span_id)
        ev.duration = self.clock() - ev.start
        stack = self._span_stack[ev.rank]
        if span_id in stack:          # tolerate out-of-order closes
            stack.remove(span_id)
        if attrs:
            ev.attrs.update(attrs)
        self._tick(ev.rank)
        self.events.append(ev)
        return ev

    # -- messages --------------------------------------------------------
    def record_send(self, source: int, dest: int, tag: int,
                    nbytes: int) -> TraceContext:
        """Record a message leaving ``source``; returns the context the
        transport piggybacks beside the payload."""
        sid = self._new_id()
        logical = self._tick(source)
        self.events.append(TraceEvent(
            kind="send", name=classify_tag(tag), rank=int(source),
            start=self.clock(), duration=0.0, logical=logical,
            seq=self._next_seq(source), id=sid,
            parent=self._enclosing(source),
            attrs={"src": int(source), "dst": int(dest), "tag": int(tag),
                   "bytes": int(nbytes)},
        ))
        return TraceContext(sid, logical)

    def record_recv(self, rank: int, source: int, tag: int, nbytes: int,
                    ctx: TraceContext | None = None) -> TraceEvent:
        """Record a message arriving on ``rank``. With a carried
        context the receive's logical clock jumps past the sender's and
        its parent is the matching send event."""
        floor = int(ctx.logical) if ctx is not None else 0
        ev = TraceEvent(
            kind="recv", name=classify_tag(tag), rank=int(rank),
            start=self.clock(), duration=0.0,
            logical=self._tick(rank, floor=floor),
            seq=self._next_seq(rank), id=self._new_id(),
            parent=int(ctx.id) if ctx is not None else None,
            attrs={"src": int(source), "dst": int(rank), "tag": int(tag),
                   "bytes": int(nbytes)},
        )
        self.events.append(ev)
        return ev

    # -- lifecycle -------------------------------------------------------
    @property
    def active(self) -> int:
        """Number of spans currently open."""
        return len(self._open)

    def snapshot(self) -> dict:
        """Plain-data view: ``{"rank", "events"}`` — JSON-serializable,
        the unit :func:`repro.observability.timeline.stitch` consumes."""
        return {
            "rank": self.rank,
            "events": [e.as_dict() for e in self.events],
        }

    def reset(self) -> None:
        if self._open:
            names = ", ".join(e.name for e in self._open.values())
            raise RuntimeError(f"cannot reset trace log with open spans: {names}")
        self.events.clear()
        self._clocks.clear()
        self._seqs.clear()
        self._span_stack.clear()
        self._next_id = 1
