"""Transport substrate: the TRANSPORT-library equivalent (paper §2.2-2.5).

Implements mixture-averaged molecular transport from kinetic theory:

* Lennard-Jones collision integrals via the Neufeld et al. fits
  (:mod:`repro.transport.collision`),
* pure-species viscosity and conductivity (Chapman-Enskog + modified
  Eucken) and binary diffusion coefficients, combined with Wilke and
  Mathur mixture rules and the mixture-averaged diffusion formula (17)
  of the paper (:mod:`repro.transport.mixture`),
* cheap constant-Lewis-number / power-law models for verification and
  for the performance model problems (:mod:`repro.transport.simple`).
"""

from repro.transport.collision import omega11, omega22, reduced_temperature
from repro.transport.mixture import MixtureAveragedTransport
from repro.transport.simple import ConstantLewisTransport, PowerLawTransport

__all__ = [
    "omega11",
    "omega22",
    "reduced_temperature",
    "MixtureAveragedTransport",
    "ConstantLewisTransport",
    "PowerLawTransport",
]
