"""Lennard-Jones collision integrals (Neufeld, Janzen & Aziz 1972 fits).

The reduced collision integrals Omega^(1,1)* and Omega^(2,2)* as functions
of the reduced temperature T* = kT/eps. Accuracy of the fits is ~0.1 % over
0.3 <= T* <= 100, which covers all combustion-relevant conditions.
"""

from __future__ import annotations

import numpy as np


def reduced_temperature(T, eps_over_k):
    """Reduced temperature T* = T / (eps/k)."""
    return np.asarray(T, dtype=float) / eps_over_k


def omega22(t_star):
    """Reduced collision integral Omega^(2,2)* (viscosity/conductivity)."""
    t = np.asarray(t_star, dtype=float)
    return (
        1.16145 * t**-0.14874
        + 0.52487 * np.exp(-0.77320 * t)
        + 2.16178 * np.exp(-2.43787 * t)
    )


def omega11(t_star):
    """Reduced collision integral Omega^(1,1)* (diffusion)."""
    t = np.asarray(t_star, dtype=float)
    return (
        1.06036 * t**-0.15610
        + 0.19300 * np.exp(-0.47635 * t)
        + 1.03587 * np.exp(-1.52996 * t)
        + 1.76474 * np.exp(-3.89411 * t)
    )


def _fit_inplace(t, coeffs, out, scratch):
    """Evaluate ``sum_k c_k * exp(b_k t)`` style fits without temporaries.

    ``coeffs`` is ``[(c0, p0)] + [(c_k, b_k), ...]`` — a leading power
    term ``c0 * t**p0`` plus exponential terms ``c_k * exp(b_k * t)``.
    Term order and per-element operation order match the allocating
    formulations above bitwise.
    """
    (c0, p0) = coeffs[0]
    np.power(t, p0, out=out)
    out *= c0
    for c, b in coeffs[1:]:
        np.multiply(t, b, out=scratch)
        np.exp(scratch, out=scratch)
        scratch *= c
        out += scratch
    return out


def omega22_inplace(t_star, out, scratch):
    """:func:`omega22` into preallocated storage (bitwise identical)."""
    return _fit_inplace(
        t_star,
        [(1.16145, -0.14874), (0.52487, -0.77320), (2.16178, -2.43787)],
        out, scratch,
    )


def omega11_inplace(t_star, out, scratch):
    """:func:`omega11` into preallocated storage (bitwise identical)."""
    return _fit_inplace(
        t_star,
        [(1.06036, -0.15610), (0.19300, -0.47635),
         (1.03587, -1.52996), (1.76474, -3.89411)],
        out, scratch,
    )
