"""Lennard-Jones collision integrals (Neufeld, Janzen & Aziz 1972 fits).

The reduced collision integrals Omega^(1,1)* and Omega^(2,2)* as functions
of the reduced temperature T* = kT/eps. Accuracy of the fits is ~0.1 % over
0.3 <= T* <= 100, which covers all combustion-relevant conditions.
"""

from __future__ import annotations

import numpy as np


def reduced_temperature(T, eps_over_k):
    """Reduced temperature T* = T / (eps/k)."""
    return np.asarray(T, dtype=float) / eps_over_k


def omega22(t_star):
    """Reduced collision integral Omega^(2,2)* (viscosity/conductivity)."""
    t = np.asarray(t_star, dtype=float)
    return (
        1.16145 * t**-0.14874
        + 0.52487 * np.exp(-0.77320 * t)
        + 2.16178 * np.exp(-2.43787 * t)
    )


def omega11(t_star):
    """Reduced collision integral Omega^(1,1)* (diffusion)."""
    t = np.asarray(t_star, dtype=float)
    return (
        1.06036 * t**-0.15610
        + 0.19300 * np.exp(-0.47635 * t)
        + 1.03587 * np.exp(-1.52996 * t)
        + 1.76474 * np.exp(-3.89411 * t)
    )
