"""Mixture-averaged molecular transport (the TRANSPORT library substitute).

Implements the constitutive models of §2.2-2.5 of the paper:

* pure-species viscosities from Chapman-Enskog theory,
* pure-species conductivities from the Eucken correction,
* Wilke's rule for mixture viscosity, the Mathur-Tondon-Saxena
  combination rule for mixture conductivity,
* binary diffusion coefficients from kinetic theory and the
  mixture-averaged diffusion coefficients of eq. (17),

        D_i^mix = (1 - X_i) / sum_{j != i} X_j / D_ij ,

* optional thermal-diffusion (Soret) ratios for the light species H and
  H2, which the paper notes matter mostly for premixed flames.

All evaluations are vectorized over the grid: temperature of shape ``S``
and mass fractions of shape ``(Ns,) + S`` produce property arrays of
shape ``S`` (scalars) or ``(Ns,) + S`` (per-species). Pair-constant
prefactors are precomputed once at construction, so the per-step cost is
a handful of fused array operations per species pair — the Python
analogue of the cache-friendly restructured loops of §4.1.
"""

from __future__ import annotations

import numpy as np

from repro.transport.collision import (
    omega11, omega11_inplace, omega22, omega22_inplace,
)
from repro.util.constants import AVOGADRO, BOLTZMANN, RU

_ANGSTROM = 1e-10


class TransportProperties:
    """Bundle of evaluated transport coefficients."""

    __slots__ = ("viscosity", "conductivity", "diffusivities", "thermal_diffusion_ratios")

    def __init__(self, viscosity, conductivity, diffusivities, thermal_diffusion_ratios=None):
        self.viscosity = viscosity  # [Pa s], shape S
        self.conductivity = conductivity  # [W/(m K)], shape S
        self.diffusivities = diffusivities  # [m^2/s], shape (Ns,)+S
        self.thermal_diffusion_ratios = thermal_diffusion_ratios  # dimensionless or None


class MixtureAveragedTransport:
    """Mixture-averaged transport evaluator for a :class:`Mechanism`.

    Parameters
    ----------
    mechanism:
        Chemistry mechanism whose species carry ``TransportData``.
    soret:
        If True, evaluate simple thermal-diffusion ratios for H2 and H.
    """

    def __init__(self, mechanism, soret: bool = False):
        self.mech = mechanism
        self.soret = bool(soret)
        tr = [sp.transport for sp in mechanism.species]
        if any(t is None for t in tr):
            missing = [sp.name for sp in mechanism.species if sp.transport is None]
            raise ValueError(f"species missing transport data: {missing}")
        self.sigma = np.array([t.sigma for t in tr]) * _ANGSTROM  # [m]
        self.eps_over_k = np.array([t.eps_over_k for t in tr])  # [K]
        w = mechanism.weights  # kg/mol
        self.weights = w
        mass = w / AVOGADRO  # molecular mass [kg]
        # Pure-species viscosity prefactor: mu_i = c_i sqrt(T) / Omega22(T*)
        self._mu_pref = (
            5.0 / 16.0 * np.sqrt(np.pi * mass * BOLTZMANN) / (np.pi * self.sigma**2)
        )
        # Pair combination rules.
        self.sigma_ij = 0.5 * (self.sigma[:, None] + self.sigma[None, :])
        self.eps_ij = np.sqrt(self.eps_over_k[:, None] * self.eps_over_k[None, :])
        m_ij = mass[:, None] * mass[None, :] / (mass[:, None] + mass[None, :])
        # Binary diffusion prefactor: D_ij = c_ij T^{3/2} / (p Omega11(T*_ij))
        self._d_pref = (
            3.0
            / 16.0
            * np.sqrt(2.0 * np.pi * BOLTZMANN**3 / m_ij)
            / (np.pi * self.sigma_ij**2)
        )
        # Wilke Phi constants.
        wr = w[:, None] / w[None, :]  # W_i / W_j
        self._phi_denom = np.sqrt(8.0 * (1.0 + wr))
        self._w_quarter = (1.0 / wr) ** 0.25  # (W_j/W_i)^(1/4)
        # Upper-triangle pair constants for the symmetric binary-diffusion
        # matrix (eps_ij and the D_ij prefactor are exactly symmetric, so
        # the workspace fast path computes ns(ns+1)/2 pairs and mirrors)
        ns = len(w)
        self._tri = np.triu_indices(ns)
        self._eps_tri = np.ascontiguousarray(self.eps_ij[self._tri])
        self._d_pref_tri = np.ascontiguousarray(self._d_pref[self._tri])
        # Eucken correction constant 1.25 Ru / W_i
        self._euken = 1.25 * RU / w

    # ------------------------------------------------------------------
    def species_viscosities(self, T):
        """Pure-species viscosities [Pa s], shape (Ns,)+S."""
        T = np.asarray(T, dtype=float)
        t_star = T[None] / self.eps_over_k.reshape((-1,) + (1,) * T.ndim)
        pref = self._mu_pref.reshape((-1,) + (1,) * T.ndim)
        return pref * np.sqrt(T)[None] / omega22(t_star)

    def species_conductivities(self, T):
        """Pure-species conductivities via Eucken [W/(m K)], shape (Ns,)+S."""
        T = np.asarray(T, dtype=float)
        mu = self.species_viscosities(T)
        w = self.weights.reshape((-1,) + (1,) * T.ndim)
        cp_mass = self.mech.thermo.cp_molar(T) / w
        return mu * (cp_mass + 1.25 * RU / w)

    def binary_diffusion(self, T, p):
        """Binary diffusion matrix D_ij [m^2/s], shape (Ns, Ns)+S."""
        T = np.asarray(T, dtype=float)
        p = np.asarray(p, dtype=float)
        extra = (1,) * T.ndim
        t_star = T[None, None] / self.eps_ij.reshape(self.eps_ij.shape + extra)
        pref = self._d_pref.reshape(self._d_pref.shape + extra)
        return pref * T[None, None] ** 1.5 / (np.broadcast_to(p, T.shape)[None, None] * omega11(t_star))

    def mixture_viscosity(self, T, X):
        """Wilke mixture viscosity [Pa s], shape S."""
        T = np.asarray(T, dtype=float)
        X = np.asarray(X, dtype=float)
        mu = self.species_viscosities(T)
        extra = (1,) * T.ndim
        ratio = np.sqrt(mu[:, None] / mu[None, :])  # (Ns,Ns)+S
        wq = self._w_quarter.reshape(self._w_quarter.shape + extra)
        phi = (1.0 + ratio * wq) ** 2 / self._phi_denom.reshape(
            self._phi_denom.shape + extra
        )
        denom = np.einsum("j...,ij...->i...", X, phi)
        return (X * mu / denom).sum(axis=0)

    def mixture_conductivity(self, T, X):
        """Mathur-Tondon-Saxena mixture conductivity [W/(m K)], shape S."""
        lam = self.species_conductivities(T)
        X = np.asarray(X, dtype=float)
        s1 = (X * lam).sum(axis=0)
        s2 = (X / lam).sum(axis=0)
        return 0.5 * (s1 + 1.0 / s2)

    def mixture_diffusivities(self, T, p, X, Y=None):
        """Mixture-averaged diffusion coefficients D_i^mix (eq. 17).

        Uses the mass-fraction form ``(1 - Y_i) / sum_{j!=i} X_j / D_ij``
        which stays finite as X_i -> 1 (standard CHEMKIN regularization).
        """
        X = np.asarray(X, dtype=float)
        if Y is None:
            Y = self.mech.mole_to_mass(X)
        d = self.binary_diffusion(T, p)
        ns = X.shape[0]
        diag = d[np.arange(ns), np.arange(ns)]  # self-diffusion D_ii, (Ns,)+S
        # sum_{j != i} X_j / D_ij, computed as the full sum minus the diagonal
        inv = (X[None, :] / d).sum(axis=1) - X / diag
        eps = 1e-30
        return (1.0 - np.asarray(Y)) / np.maximum(inv, eps) + eps

    def thermal_diffusion_ratios(self, T, X):
        """Simple Soret model: ratios theta_i for light species (H2, H).

        Uses the polynomial light-species model of the TRANSPORT manual in
        a reduced constant form: theta_i = kappa_i X_i with kappa = -0.29
        for H2 and -0.35 for H (diffusion toward hot regions), zero for
        heavy species. Adequate to exercise the Soret code path the paper
        discusses (§2.4).
        """
        T = np.asarray(T, dtype=float)
        X = np.asarray(X, dtype=float)
        theta = np.zeros_like(X)
        for name, kappa in (("H2", -0.29), ("H", -0.35)):
            if name in self.mech.species_names:
                i = self.mech.index(name)
                theta[i] = kappa * X[i]
        return theta

    # ------------------------------------------------------------------
    def evaluate(self, T, p, Y, workspace=None) -> TransportProperties:
        """Evaluate all mixture transport properties at (T, p, Y).

        With a :class:`~repro.core.workspace.Workspace` the evaluation
        runs on pooled scratch storage: the symmetric binary-diffusion
        matrix is computed on its upper triangle only and mirrored, the
        collision integrals are evaluated in place, and the returned
        property arrays are workspace-owned (valid until the next
        ``evaluate`` call with the same workspace). Results are bitwise
        identical to the allocating path.
        """
        if workspace is not None:
            return self._evaluate_ws(T, p, Y, workspace)
        X = self.mech.mass_to_mole(Y)
        mu = self.mixture_viscosity(T, X)
        lam = self.mixture_conductivity(T, X)
        dmix = self.mixture_diffusivities(T, p, X, Y=Y)
        theta = self.thermal_diffusion_ratios(T, X) if self.soret else None
        return TransportProperties(mu, lam, dmix, theta)

    def _evaluate_ws(self, T, p, Y, ws) -> TransportProperties:
        """Workspace-backed fast path of :meth:`evaluate`."""
        T = np.asarray(T, dtype=float)
        Y = np.asarray(Y, dtype=float)
        S = T.shape
        ns = self.mech.n_species
        extra = (1,) * T.ndim
        w = self.weights.reshape((-1,) + extra)

        # mole fractions: X = Y wbar / W_i with wbar = 1 / sum(Y_i/W_i)
        X = ws.array("tr.X", (ns,) + S)
        wbar = ws.array("tr.wbar", S)
        np.divide(Y, w, out=X)
        np.sum(X, axis=0, out=wbar)
        np.divide(1.0, wbar, out=wbar)
        np.multiply(Y, wbar[None], out=X)
        X /= w

        tmp_ns = ws.array("tr.tmp_ns", (ns,) + S)

        # pure-species viscosities: mu_i = c_i sqrt(T) / Omega22(T*)
        t_star = ws.array("tr.t_star", (ns,) + S)
        om = ws.array("tr.om", (ns,) + S)
        np.divide(T[None], self.eps_over_k.reshape((-1,) + extra), out=t_star)
        omega22_inplace(t_star, om, tmp_ns)
        sqrt_t = ws.array("tr.sqrt_t", S)
        np.sqrt(T, out=sqrt_t)
        mu_s = ws.array("tr.mu_s", (ns,) + S)
        np.multiply(self._mu_pref.reshape((-1,) + extra), sqrt_t[None], out=mu_s)
        mu_s /= om

        # Wilke mixture viscosity
        pair = ws.array("tr.pair", (ns, ns) + S)
        np.divide(mu_s[:, None], mu_s[None, :], out=pair)
        np.sqrt(pair, out=pair)
        pair *= self._w_quarter.reshape(self._w_quarter.shape + extra)
        pair += 1.0
        np.power(pair, 2, out=pair)
        pair /= self._phi_denom.reshape(self._phi_denom.shape + extra)
        denom = ws.array("tr.denom", (ns,) + S)
        np.einsum("j...,ij...->i...", X, pair, out=denom)
        np.multiply(X, mu_s, out=tmp_ns)
        tmp_ns /= denom
        visc = ws.array("tr.visc", S)
        np.sum(tmp_ns, axis=0, out=visc)

        # Mathur-Tondon-Saxena conductivity (reuses the pure-species
        # viscosities — the allocating path recomputes the identical
        # values inside species_conductivities)
        lam_s = ws.array("tr.lam_s", (ns,) + S)
        cp = self.mech.thermo.cp_molar(T)
        np.divide(cp, w, out=lam_s)
        lam_s += self._euken.reshape((-1,) + extra)
        lam_s *= mu_s
        s1 = ws.array("tr.s1", S)
        s2 = ws.array("tr.s2", S)
        np.multiply(X, lam_s, out=tmp_ns)
        np.sum(tmp_ns, axis=0, out=s1)
        np.divide(X, lam_s, out=tmp_ns)
        np.sum(tmp_ns, axis=0, out=s2)
        cond = ws.array("tr.cond", S)
        np.divide(1.0, s2, out=s2)
        np.add(s1, s2, out=cond)
        cond *= 0.5

        # binary diffusion on the upper triangle, mirrored into (ns, ns)
        ntri = self._eps_tri.shape[0]
        ts_tri = ws.array("tr.ts_tri", (ntri,) + S)
        om_tri = ws.array("tr.om_tri", (ntri,) + S)
        scr_tri = ws.array("tr.scr_tri", (ntri,) + S)
        np.divide(T[None], self._eps_tri.reshape((-1,) + extra), out=ts_tri)
        omega11_inplace(ts_tri, om_tri, scr_tri)
        t15 = ws.array("tr.t15", S)
        np.power(T, 1.5, out=t15)
        # denominator p * Omega11, then D = pref T^1.5 / (p Omega11)
        np.multiply(om_tri, np.broadcast_to(p, S)[None], out=scr_tri)
        d_tri = ts_tri  # T* no longer needed; reuse as the D_ij triangle
        np.multiply(self._d_pref_tri.reshape((-1,) + extra), t15[None], out=d_tri)
        d_tri /= scr_tri
        dd = ws.array("tr.dd", (ns, ns) + S)
        iu, ju = self._tri
        dd[iu, ju] = d_tri
        dd[ju, iu] = d_tri

        # mixture-averaged diffusivities (eq. 17, mass-fraction form)
        inv = ws.array("tr.inv", (ns,) + S)
        np.divide(X[None, :], dd, out=pair)
        np.sum(pair, axis=1, out=inv)
        for i in range(ns):
            np.divide(X[i : i + 1], dd[i : i + 1, i], out=tmp_ns[i : i + 1])
        inv -= tmp_ns
        eps = 1e-30
        diff = ws.array("tr.diff", (ns,) + S)
        np.subtract(1.0, Y, out=diff)
        np.maximum(inv, eps, out=inv)
        diff /= inv
        diff += eps

        theta = None
        if self.soret:
            theta = ws.zeros("tr.theta", (ns,) + S)
            for name, kappa in (("H2", -0.29), ("H", -0.35)):
                if name in self.mech.species_names:
                    i = self.mech.index(name)
                    np.multiply(X[i : i + 1], kappa, out=theta[i : i + 1])
        return TransportProperties(visc, cond, diff, theta)
