"""Simplified transport models.

* :class:`PowerLawTransport` — mu = mu_ref (T/T_ref)^n with constant
  Prandtl number: the classic model problem transport used for the
  pressure-wave performance test of §4.1.
* :class:`ConstantLewisTransport` — mixture conductivity from a power-law
  viscosity and Prandtl number, species diffusivities from fixed Lewis
  numbers: D_i = lambda / (rho cp Le_i). Much cheaper than full
  mixture-averaged transport and adequate for the global-chemistry
  Bunsen sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.transport.mixture import TransportProperties


class PowerLawTransport:
    """Power-law viscosity with constant Prandtl and Lewis = 1."""

    def __init__(self, mechanism, mu_ref=1.8e-5, t_ref=300.0, exponent=0.7, prandtl=0.72):
        self.mech = mechanism
        self.mu_ref = float(mu_ref)
        self.t_ref = float(t_ref)
        self.exponent = float(exponent)
        self.prandtl = float(prandtl)

    def evaluate(self, T, p, Y, workspace=None) -> TransportProperties:
        # ``workspace`` is accepted for interface parity with the
        # mixture-averaged model; this cheap model always allocates
        T = np.asarray(T, dtype=float)
        mu = self.mu_ref * (T / self.t_ref) ** self.exponent
        cp = self.mech.cp_mass(T, Y)
        lam = mu * cp / self.prandtl
        rho = self.mech.density(p, T, Y)
        d_common = lam / (rho * cp)  # Le = 1
        d = np.broadcast_to(d_common, (self.mech.n_species,) + T.shape).copy()
        return TransportProperties(mu, lam, d, None)


class ConstantLewisTransport:
    """Power-law viscosity/conductivity with per-species Lewis numbers."""

    def __init__(
        self,
        mechanism,
        lewis=None,
        mu_ref=1.8e-5,
        t_ref=300.0,
        exponent=0.7,
        prandtl=0.72,
    ):
        self.mech = mechanism
        self.mu_ref = float(mu_ref)
        self.t_ref = float(t_ref)
        self.exponent = float(exponent)
        self.prandtl = float(prandtl)
        ns = mechanism.n_species
        if lewis is None:
            self.lewis = np.ones(ns)
        else:
            if isinstance(lewis, dict):
                le = np.ones(ns)
                for name, value in lewis.items():
                    le[mechanism.index(name)] = value
                self.lewis = le
            else:
                self.lewis = np.asarray(lewis, dtype=float)
                if self.lewis.shape != (ns,):
                    raise ValueError(f"lewis must have shape ({ns},)")

    def evaluate(self, T, p, Y, workspace=None) -> TransportProperties:
        # ``workspace`` is accepted for interface parity with the
        # mixture-averaged model; this cheap model always allocates
        T = np.asarray(T, dtype=float)
        mu = self.mu_ref * (T / self.t_ref) ** self.exponent
        cp = self.mech.cp_mass(T, Y)
        lam = mu * cp / self.prandtl
        rho = self.mech.density(p, T, Y)
        alpha = lam / (rho * cp)
        le = self.lewis.reshape((-1,) + (1,) * T.ndim)
        d = alpha[None] / le
        return TransportProperties(mu, lam, np.ascontiguousarray(d), None)
