"""Turbulence substrate: synthetic inflow turbulence and statistics.

The paper's jet configurations specify synthetic turbulence at the
inflow whose scales then evolve downstream (Table 1 footnote d). This
package provides:

* :mod:`repro.turbulence.spectra` — model energy spectra
  (Passot-Pouquet, von Karman-Pao) and spectral analysis of fields,
* :mod:`repro.turbulence.synthetic` — divergence-free random velocity
  fields synthesized from a target spectrum,
* :mod:`repro.turbulence.statistics` — u', dissipation, integral and
  Taylor scales, and the derived numbers of Table 1 (Re_t, Karlovitz,
  Damkohler).
"""

from repro.turbulence.spectra import passot_pouquet, von_karman_pao, energy_spectrum
from repro.turbulence.synthetic import synthetic_velocity_field
from repro.turbulence.statistics import (
    TurbulenceScales,
    rms_fluctuation,
    integral_length_scale,
    turbulence_scales,
)

__all__ = [
    "passot_pouquet",
    "von_karman_pao",
    "energy_spectrum",
    "synthetic_velocity_field",
    "TurbulenceScales",
    "rms_fluctuation",
    "integral_length_scale",
    "turbulence_scales",
]
