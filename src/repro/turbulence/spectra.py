"""Model turbulence energy spectra and spectral analysis."""

from __future__ import annotations

import numpy as np


def passot_pouquet(k, u_rms: float, k_peak: float):
    """Passot-Pouquet spectrum: E(k) ~ k^4 exp(-2 (k/kp)^2).

    Normalized so that the integral of E(k) equals (3/2) u_rms^2 for a
    3D field (isotropic turbulence kinetic energy).
    """
    k = np.asarray(k, dtype=float)
    q2 = 1.5 * u_rms**2
    # integral of x^4 exp(-2 x^2) dx over [0, inf) = 3 sqrt(pi/2) / 32
    norm = q2 / (k_peak * 3.0 * np.sqrt(np.pi / 2.0) / 32.0)
    x = k / k_peak
    return norm * x**4 * np.exp(-2.0 * x**2)


def von_karman_pao(k, u_rms: float, l_integral: float, eta: float):
    """Von Karman-Pao spectrum with near-dissipation cutoff."""
    k = np.asarray(k, dtype=float)
    ke = 1.0 / l_integral
    q2 = 1.5 * u_rms**2
    a = (k / ke) ** 4 / (1.0 + (k / ke) ** 2) ** (17.0 / 6.0)
    cutoff = np.exp(-1.5 * (k * eta) ** (4.0 / 3.0))
    raw = a * cutoff
    # numeric normalization on a fine grid
    kk = np.linspace(1e-6, 40.0 / max(eta, 1e-12), 4000) if eta > 0 else np.linspace(
        1e-6, 100.0 * ke, 4000
    )
    aa = (kk / ke) ** 4 / (1.0 + (kk / ke) ** 2) ** (17.0 / 6.0)
    cc = np.exp(-1.5 * (kk * eta) ** (4.0 / 3.0))
    integral = np.trapezoid(aa * cc, kk)
    return q2 * raw / integral


def energy_spectrum(velocity, lengths):
    """Radial kinetic-energy spectrum of a periodic velocity field.

    Parameters
    ----------
    velocity:
        Sequence of ndim arrays (the velocity components) on a periodic
        grid.
    lengths:
        Domain lengths per direction.

    Returns (k_bins, E) with sum(E * dk) ~ (1/2) <u_i u_i>.
    """
    vel = [np.asarray(v, dtype=float) for v in velocity]
    shape = vel[0].shape
    ndim = len(shape)
    n_total = np.prod(shape)
    # wavenumber magnitudes
    ks = [
        2.0 * np.pi * np.fft.fftfreq(n, d=L / n)
        for n, L in zip(shape, lengths)
    ]
    kmag = np.sqrt(sum(np.meshgrid(*[k**2 for k in ks], indexing="ij")))
    # spectral energy density per mode
    e_mode = sum(np.abs(np.fft.fftn(v)) ** 2 for v in vel) / (2.0 * n_total**2)
    k_min = 2.0 * np.pi / max(lengths)
    k_max = float(kmag.max())
    n_bins = max(8, min(shape) // 2)
    edges = np.linspace(0.0, k_max, n_bins + 1)
    which = np.digitize(kmag.ravel(), edges) - 1
    e_flat = e_mode.ravel()
    spec = np.zeros(n_bins)
    for b in range(n_bins):
        spec[b] = e_flat[which == b].sum()
    centers = 0.5 * (edges[:-1] + edges[1:])
    dk = edges[1] - edges[0]
    return centers, spec / dk
