"""Turbulence statistics: the derived quantities of Table 1.

Given a velocity-fluctuation field and a laminar-flame reference, this
module computes u', the dissipation-based turbulence length scale
``lt = u'^3 / eps``, the integral scale from the spanwise velocity
autocorrelation (the paper's ``l33``), and the non-dimensional groups of
Table 1: jet and turbulence Reynolds numbers, Karlovitz number
``(deltaL / lk)^2``, and Damkohler number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rms_fluctuation(velocity) -> float:
    """Per-component RMS of the fluctuating velocity (mean removed)."""
    comps = [np.asarray(v, dtype=float) for v in velocity]
    var = np.mean([np.mean((v - v.mean()) ** 2) for v in comps])
    return float(np.sqrt(var))


def dissipation_rate(velocity, lengths, nu: float) -> float:
    """Mean TKE dissipation of a periodic field: eps = 2 nu <s_ij s_ij>.

    Gradients are computed spectrally (periodic directions assumed).
    """
    vel = [np.asarray(v, dtype=float) for v in velocity]
    shape = vel[0].shape
    ndim = len(shape)
    ks = [
        2.0 * np.pi * np.fft.fftfreq(n, d=L / n)
        for n, L in zip(shape, lengths)
    ]
    kvec = np.meshgrid(*ks, indexing="ij")
    grads = [[None] * ndim for _ in range(ndim)]
    for a in range(ndim):
        v_hat = np.fft.fftn(vel[a])
        for b in range(ndim):
            grads[a][b] = np.real(np.fft.ifftn(1j * kvec[b] * v_hat))
    sij2 = 0.0
    for a in range(ndim):
        for b in range(ndim):
            s = 0.5 * (grads[a][b] + grads[b][a])
            sij2 = sij2 + np.mean(s * s)
    return float(2.0 * nu * sij2)


def integral_length_scale(v, length: float, axis: int = -1) -> float:
    """Integral scale from the autocorrelation along ``axis``.

    The paper's ``l33``: the integral of the (periodic) autocorrelation
    of one velocity component along one direction, integrated to its
    first zero crossing.
    """
    v = np.asarray(v, dtype=float)
    v = v - v.mean()
    n = v.shape[axis]
    v = np.moveaxis(v, axis, -1)
    # FFT autocorrelation along the last axis, averaged over the rest
    f = np.fft.fft(v, axis=-1)
    acf = np.real(np.fft.ifft(f * np.conj(f), axis=-1))
    acf = acf.reshape(-1, n).mean(axis=0)
    if acf[0] <= 0:
        return 0.0
    r = acf / acf[0]
    dx = length / n
    # integrate to first zero crossing (or half-domain)
    upper = n // 2
    cross = np.nonzero(r[:upper] <= 0.0)[0]
    stop = int(cross[0]) if cross.size else upper
    return float(np.trapezoid(r[: stop + 1], dx=dx))


@dataclass
class TurbulenceScales:
    """Derived turbulence/flame scales (one row of Table 1)."""

    u_rms: float
    dissipation: float
    lt: float            # u'^3 / eps
    l_integral: float    # autocorrelation integral scale (l33)
    kolmogorov: float    # (nu^3/eps)^(1/4)
    re_turb: float       # u' l33 / nu
    karlovitz: float     # (delta_L / l_k)^2
    damkohler: float     # (S_L l33) / (u' delta_L)

    def as_dict(self) -> dict:
        return {
            "u_rms": self.u_rms,
            "dissipation": self.dissipation,
            "lt": self.lt,
            "l_integral": self.l_integral,
            "kolmogorov": self.kolmogorov,
            "Re_t": self.re_turb,
            "Ka": self.karlovitz,
            "Da": self.damkohler,
        }


def turbulence_scales(velocity, lengths, nu: float, flame_speed: float,
                      flame_thickness: float, spanwise_axis: int = -1) -> TurbulenceScales:
    """Compute all Table 1 derived quantities for a fluctuation field."""
    u_rms = rms_fluctuation(velocity)
    eps = dissipation_rate(velocity, lengths, nu)
    lt = u_rms**3 / eps if eps > 0 else np.inf
    l33 = integral_length_scale(velocity[-1], lengths[spanwise_axis], axis=spanwise_axis)
    lk = (nu**3 / eps) ** 0.25 if eps > 0 else np.inf
    re_t = u_rms * l33 / nu
    ka = (flame_thickness / lk) ** 2 if np.isfinite(lk) else 0.0
    da = (flame_speed * l33) / (u_rms * flame_thickness) if u_rms > 0 else np.inf
    return TurbulenceScales(
        u_rms=u_rms,
        dissipation=eps,
        lt=lt,
        l_integral=l33,
        kolmogorov=lk,
        re_turb=re_t,
        karlovitz=ka,
        damkohler=da,
    )
