"""Divergence-free synthetic turbulence (spectral method).

Velocity fields are synthesized in Fourier space with random phases,
amplitudes drawn from a target model spectrum, and solenoidal projection
(k . u_hat = 0), then inverse-transformed. This is the standard way DNS
codes seed "synthetic turbulence specified at the inflow" (Table 1,
footnote d).
"""

from __future__ import annotations

import numpy as np

from repro.turbulence.spectra import passot_pouquet


def synthetic_velocity_field(shape, lengths, u_rms: float, length_scale: float,
                             seed: int = 0, spectrum=None):
    """Generate a periodic, divergence-free random velocity field.

    Parameters
    ----------
    shape, lengths:
        Grid points and physical extents (2 or 3 directions).
    u_rms:
        Target per-component RMS fluctuation [m/s].
    length_scale:
        Energetic length scale; the spectrum peaks near
        ``k_peak = 2 pi / length_scale``.
    seed:
        RNG seed (fields are reproducible).
    spectrum:
        Optional callable ``E(k)``; default Passot-Pouquet at the target
        u_rms and k_peak.

    Returns a list of ``ndim`` velocity-component arrays. The field is
    solenoidal to spectral accuracy and rescaled so each component has
    exactly ``u_rms`` RMS.
    """
    shape = tuple(int(n) for n in shape)
    ndim = len(shape)
    if ndim not in (2, 3):
        raise ValueError("synthetic turbulence needs 2 or 3 dimensions")
    rng = np.random.default_rng(seed)
    k_peak = 2.0 * np.pi / length_scale
    if spectrum is None:
        spectrum = lambda k: passot_pouquet(k, u_rms, k_peak)  # noqa: E731

    ks = [
        2.0 * np.pi * np.fft.fftfreq(n, d=L / n)
        for n, L in zip(shape, lengths)
    ]
    kvec = np.meshgrid(*ks, indexing="ij")
    k2 = sum(k * k for k in kvec)
    kmag = np.sqrt(k2)
    kmag_safe = np.where(kmag > 0, kmag, 1.0)

    # random complex field per component
    u_hat = [
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        for _ in range(ndim)
    ]
    # solenoidal projection: u -= k (k.u)/k^2
    k_dot_u = sum(k * u for k, u in zip(kvec, u_hat))
    u_hat = [u - k * k_dot_u / np.where(k2 > 0, k2, 1.0) for k, u in zip(kvec, u_hat)]

    # shape amplitudes by the target spectrum: |u_hat| ~ sqrt(E(k)/k^(d-1))
    with np.errstate(divide="ignore", invalid="ignore"):
        amp = np.sqrt(spectrum(kmag_safe) / kmag_safe ** (ndim - 1))
    amp = np.where(kmag > 0, amp, 0.0)
    current = np.sqrt(sum(np.abs(u) ** 2 for u in u_hat))
    scale = np.where(current > 0, amp / np.where(current > 0, current, 1.0), 0.0)
    # zero the Nyquist planes: they have no conjugate partner, so taking
    # the real part there breaks the solenoidal constraint
    for axis, n in enumerate(shape):
        if n % 2 == 0:
            sl = [slice(None)] * ndim
            sl[axis] = n // 2
            scale[tuple(sl)] = 0.0
    u_hat = [u * scale for u in u_hat]

    vel = [np.real(np.fft.ifftn(u)) for u in u_hat]
    vel = [v - v.mean() for v in vel]
    # one common scale factor (per-component scaling would break the
    # solenoidal projection): match the mean per-component RMS exactly
    mean_rms = np.sqrt(np.mean([np.mean(v * v) for v in vel]))
    if mean_rms > 0:
        vel = [v * (u_rms / mean_rms) for v in vel]
    return vel


def divergence(velocity, lengths):
    """Spectral divergence of a periodic velocity field (diagnostic)."""
    vel = [np.asarray(v, dtype=float) for v in velocity]
    shape = vel[0].shape
    ks = [
        2.0 * np.pi * np.fft.fftfreq(n, d=L / n)
        for n, L in zip(shape, lengths)
    ]
    kvec = np.meshgrid(*ks, indexing="ij")
    div_hat = sum(1j * k * np.fft.fftn(v) for k, v in zip(kvec, vel))
    return np.real(np.fft.ifftn(div_hat))
