"""Shared utilities: physical constants, validation helpers, timers."""

from repro.util.constants import (
    RU,
    P_ATM,
    T_STANDARD,
    AVOGADRO,
    BOLTZMANN,
    CAL_TO_J,
)
from repro.util.validation import (
    check_positive,
    check_in_range,
    check_shape,
    check_probability_vector,
)
from repro.util.timers import Timer, TimerRegistry

__all__ = [
    "RU",
    "P_ATM",
    "T_STANDARD",
    "AVOGADRO",
    "BOLTZMANN",
    "CAL_TO_J",
    "check_positive",
    "check_in_range",
    "check_shape",
    "check_probability_vector",
    "Timer",
    "TimerRegistry",
]
