"""Physical constants in SI units.

All of :mod:`repro` works in SI internally: kg, m, s, K, J, mol.
Chemistry rate coefficients are converted from the CGS/cal conventions of
CHEMKIN-format mechanisms at load time (see :mod:`repro.chemistry.parser`).
"""

#: Universal gas constant [J / (mol K)].
RU = 8.31446261815324

#: Standard atmosphere [Pa].
P_ATM = 101325.0

#: Standard-state reference temperature for thermodynamic data [K].
T_STANDARD = 298.15

#: Avogadro constant [1/mol].
AVOGADRO = 6.02214076e23

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Thermochemical calorie [J].
CAL_TO_J = 4.184
