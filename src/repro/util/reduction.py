"""Batch-shape-stable reductions for per-cell thermochemistry.

NumPy's ``a.sum(axis=0)`` over a leading species/state axis picks its
accumulation order from the array's memory layout: for a C-contiguous
``(Ns, N)`` array with ``N > 1`` it accumulates row by row in index
order, but when the trailing dimensions collapse (``N == 1``, or a
single cell extracted from a field) the reduction degenerates to a
contiguous 1-D sum and switches to NumPy's unrolled/pairwise kernel.
The two orders round differently in the last ulp, so the same physical
cell can produce different bits depending on how many neighbours it was
batched with.

Per-cell chemistry must not have that property: the implicit kinetics
integrators advance shrinking active subsets, and the chemistry load
balancer ships arbitrary cell blocks between ranks — in both cases a
cell's result has to be a pure function of its own state, not of the
batch it happened to ride in.  :func:`axis0_sum` performs the reduction
in explicit index order, which is bitwise identical to NumPy's own
``N > 1`` row accumulation (verified by the chemistry test battery) and
simply extends that order to every batch shape.
"""
from __future__ import annotations

import numpy as np

__all__ = ["axis0_sum"]


def axis0_sum(a):
    """Sum ``a`` over axis 0 in strict index order.

    Equivalent to ``a.sum(axis=0)`` up to summation order; unlike the
    NumPy reduction the order never depends on the shape or memory
    layout of the trailing (batch) axes, so extracting one cell from a
    batch and reducing it alone gives bitwise-identical results.
    """
    a = np.asarray(a)
    if a.shape[0] == 0:
        return np.zeros(a.shape[1:], dtype=a.dtype)
    acc = np.array(a[0], copy=True)
    for k in range(1, a.shape[0]):
        acc += a[k]
    return acc
