"""Wall-clock timers used by the solver and the TAU-like profiler."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Supports use as a context manager::

        t = Timer("rhs")
        with t:
            compute()
        print(t.total, t.count)

    ``sink``, when set, receives every measured interval (seconds) —
    the hook the registry uses to forward legacy timers into the active
    telemetry backend so they appear in fused profiles.
    """

    name: str
    total: float = 0.0
    count: int = 0
    _start: float | None = None
    sink: object = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.total += elapsed
        self.count += 1
        if self.sink is not None:
            self.sink(elapsed)
        return elapsed

    def cancel(self) -> None:
        """Discard the running interval (no-op if not running)."""
        self._start = None

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def mean(self) -> float:
        """Mean elapsed time per start/stop pair (0 if never run)."""
        return self.total / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On an exception inside the block the interval is aborted, not a
        # measurement: discard it so the timer is immediately reusable
        # (start() must not see a stale running state).
        if exc_type is not None:
            self.cancel()
        else:
            self.stop()


@dataclass
class TimerRegistry:
    """A named collection of :class:`Timer` objects.

    When ``telemetry`` is a recording backend, every timer created by
    the registry also observes its intervals into the telemetry
    histogram ``timer.<name>`` — so legacy timer call sites show up in
    fused cross-rank profiles instead of living in a second, disjoint
    timing namespace. A null/absent backend leaves timers exactly as
    before (no sink, no per-stop overhead).
    """

    timers: dict = field(default_factory=dict)
    telemetry: object = None

    def __call__(self, name: str) -> Timer:
        """Return (creating on first use) the timer called ``name``."""
        if name not in self.timers:
            timer = Timer(name)
            tel = self.telemetry
            if tel is not None and getattr(tel, "enabled", False):
                timer.sink = tel.histogram(f"timer.{name}").observe
            self.timers[name] = timer
        return self.timers[name]

    def bind_telemetry(self, telemetry) -> None:
        """Attach (or detach, with None) a telemetry backend; existing
        timers are re-sunk to the new backend."""
        self.telemetry = telemetry
        enabled = telemetry is not None and getattr(telemetry, "enabled", False)
        for name, timer in self.timers.items():
            timer.sink = (
                telemetry.histogram(f"timer.{name}").observe if enabled else None
            )

    def __iter__(self):
        """Timers in deterministic (creation) order."""
        return iter(self.timers.values())

    def __len__(self) -> int:
        return len(self.timers)

    def __contains__(self, name: str) -> bool:
        return name in self.timers

    def names(self) -> list:
        return list(self.timers)

    def report(self) -> str:
        """Human-readable table of all timers, sorted by total time
        (name breaks ties, so the ordering is deterministic)."""
        rows = sorted(self.timers.values(), key=lambda t: (-t.total, t.name))
        lines = [f"{'timer':<32s} {'total[s]':>10s} {'count':>8s} {'mean[ms]':>10s}"]
        for t in rows:
            lines.append(f"{t.name:<32s} {t.total:>10.4f} {t.count:>8d} {t.mean * 1e3:>10.4f}")
        return "\n".join(lines)
