"""Lightweight argument validation helpers.

These raise :class:`ValueError` with actionable messages; they are used at
public API boundaries only, never in inner loops.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value`` (scalar or array) is > 0."""
    arr = np.asarray(value)
    if not np.all(arr > 0):
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi`` elementwise."""
    arr = np.asarray(value)
    if not (np.all(arr >= lo) and np.all(arr <= hi)):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_shape(name: str, array, shape: tuple) -> None:
    """Raise ``ValueError`` unless ``array.shape == shape``."""
    arr = np.asarray(array)
    if arr.shape != tuple(shape):
        raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")


def check_probability_vector(name: str, value, atol: float = 1e-8) -> None:
    """Raise ``ValueError`` unless ``value`` is non-negative and sums to 1."""
    arr = np.asarray(value, dtype=float)
    if np.any(arr < -atol):
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-8 * arr.size):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
