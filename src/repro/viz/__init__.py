"""Visualization substrate: §8 of the paper.

* :mod:`repro.viz.transfer` — color/opacity transfer functions,
* :mod:`repro.viz.volume` — a software ray-marching volume renderer
  with front-to-back compositing (the Figs 10/12/14 images),
* :mod:`repro.viz.fusion` — multivariate data fusion: render two or
  more scalar fields simultaneously with per-field transfer functions
  and mixed styles (§8.1),
* :mod:`repro.viz.parallel_coords` — the parallel-coordinates brushing
  interface of Fig 15,
* :mod:`repro.viz.time_histogram` — per-variable time histograms
  (Fig 15's temporal view),
* :mod:`repro.viz.insitu` — in-situ rendering hooks with cost
  accounting (§8.3).
"""

from repro.viz.transfer import TransferFunction, ColorMap
from repro.viz.volume import VolumeRenderer, render_isosurface_mask
from repro.viz.fusion import fuse_fields, simultaneous_render
from repro.viz.parallel_coords import ParallelCoordinates
from repro.viz.time_histogram import TimeHistogram
from repro.viz.insitu import InSituRenderer
from repro.viz.image import save_ppm

__all__ = [
    "TransferFunction",
    "ColorMap",
    "VolumeRenderer",
    "render_isosurface_mask",
    "fuse_fields",
    "simultaneous_render",
    "ParallelCoordinates",
    "TimeHistogram",
    "InSituRenderer",
    "save_ppm",
]
