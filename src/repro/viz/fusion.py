"""Multivariate data fusion (§8.1).

"The data-fusion problem here is to determine how to display multiple
data values defined at the same spatial location." Two fusion modes:

* :func:`fuse_fields` — value-level fusion: blend normalized fields
  with weights into one composite scalar (cheap, for dashboards),
* :func:`simultaneous_render` — render-level fusion through
  :class:`~repro.viz.volume.VolumeRenderer.render_multi`, the mode used
  for the OH + HO2 images of Figs 10/14.
"""

from __future__ import annotations

import numpy as np

from repro.viz.transfer import ColorMap, TransferFunction
from repro.viz.volume import VolumeRenderer


def fuse_fields(fields, weights=None):
    """Weighted blend of min-max-normalized scalar fields."""
    fields = [np.asarray(f, dtype=float) for f in fields]
    if weights is None:
        weights = [1.0] * len(fields)
    if len(weights) != len(fields):
        raise ValueError("one weight per field")
    out = np.zeros_like(fields[0])
    total = 0.0
    for f, w in zip(fields, weights):
        lo, hi = float(f.min()), float(f.max())
        norm = (f - lo) / (hi - lo) if hi > lo else np.zeros_like(f)
        out += w * norm
        total += w
    return out / total if total else out


def simultaneous_render(fields: dict, view_axis: int = 2):
    """Render the canonical §6 pairs: OH (cool colors) + HO2 (fire).

    ``fields`` maps names to arrays; known names get tuned transfer
    functions, others a generic gray ramp. Returns the RGB image.
    """
    layers = []
    presets = {
        "OH": (ColorMap.cool(), [(0.0, 0.0), (0.3, 0.0), (1.0, 0.8)]),
        "HO2": (ColorMap.fire(), [(0.0, 0.0), (0.25, 0.0), (1.0, 0.7)]),
        "T": (ColorMap.fire(), [(0.0, 0.0), (0.5, 0.1), (1.0, 0.5)]),
        "mixfrac": (ColorMap.greens(), [(0.0, 0.0), (1.0, 0.4)]),
    }
    for name, field in fields.items():
        f = np.asarray(field, dtype=float)
        lo, hi = float(f.min()), float(f.max())
        if hi <= lo:
            hi = lo + 1.0
        cmap, opacity = presets.get(
            name, (ColorMap([(0.0, (0.1,) * 3), (1.0, (0.9,) * 3)]),
                   [(0.0, 0.0), (1.0, 0.5)])
        )
        layers.append((f, TransferFunction(lo, hi, cmap, opacity=opacity)))
    renderer = VolumeRenderer(axis=view_axis)
    return renderer.render_multi(layers)
