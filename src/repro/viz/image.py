"""Minimal image output (PPM, no external dependencies)."""

from __future__ import annotations

import numpy as np


def save_ppm(path: str, image) -> None:
    """Write an RGB float image (values in [0, 1]) as binary PPM."""
    img = np.asarray(image, dtype=float)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError("image must be (h, w, 3)")
    data = (np.clip(img, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    with open(path, "wb") as f:
        f.write(f"P6 {img.shape[1]} {img.shape[0]} 255\n".encode())
        f.write(data.tobytes())


def load_ppm(path: str) -> np.ndarray:
    """Read a binary PPM back into a float RGB image in [0, 1]."""
    with open(path, "rb") as f:
        magic = f.read(2)
        if magic != b"P6":
            raise ValueError("not a binary PPM file")
        fields = []
        while len(fields) < 3:
            tok = b""
            ch = f.read(1)
            while ch.isspace():
                ch = f.read(1)
            while ch and not ch.isspace():
                tok += ch
                ch = f.read(1)
            fields.append(int(tok))
        w, h, maxval = fields
        data = np.frombuffer(f.read(w * h * 3), dtype=np.uint8)
    return data.reshape(h, w, 3).astype(float) / maxval
