"""In-situ visualization (§8.3).

Renders while the simulation runs, sharing the solver's data structures
(no copies of the state are made) and accounting for its own cost so
the "small overhead on top of the simulation" requirement can be
checked. Attach an :class:`InSituRenderer` to
``S3DSolver.insitu_hook``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.viz.fusion import simultaneous_render


class InSituRenderer:
    """Solver hook producing fused renderings of selected fields.

    Parameters
    ----------
    fields:
        List of field selectors: names among {"T", "OH", "HO2",
        "heat_release"} plus any species name prefixed "Y:".
    max_overhead:
        Advisory ceiling on viz time / solver time; exceeded ratios are
        flagged in :attr:`overhead_warnings`.
    """

    def __init__(self, fields=("T", "OH"), max_overhead: float = 0.05):
        self.fields = tuple(fields)
        self.max_overhead = float(max_overhead)
        self.images: list = []
        self.render_time = 0.0
        self.overhead_warnings: list = []

    def _extract(self, name: str, state, primitives):
        rho, vel, T, p, Y, _ = primitives
        if name == "T":
            return T
        if name.startswith("Y:"):
            return Y[state.mech.index(name[2:])]
        if name in state.mech.species_names:
            return Y[state.mech.index(name)]
        raise KeyError(f"unknown in-situ field {name!r}")

    def __call__(self, step: int, t: float, state) -> None:
        start = time.perf_counter()
        primitives = state.primitives()
        fields = {
            name.replace("Y:", ""): self._extract(name, state, primitives)
            for name in self.fields
        }
        image = simultaneous_render(fields)
        self.images.append((step, t, image))
        self.render_time += time.perf_counter() - start

    def check_overhead(self, solver) -> float:
        """Viz-time / solve-time ratio; warns when above the ceiling."""
        solve = solver.timers("integrate").total
        ratio = self.render_time / solve if solve > 0 else 0.0
        if ratio > self.max_overhead:
            self.overhead_warnings.append(ratio)
        return ratio
