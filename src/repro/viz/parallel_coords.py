"""Parallel-coordinates brushing interface (§8.2, Fig 15).

Selected points of the multivariate volume are polylines whose vertices
lie on parallel axes (one per variable); brushing an interval on any
axis selects the voxels whose polylines pass through it, and the
selection highlights the corresponding spatial region — the workflow
the paper uses to find, e.g., the negative spatial correlation between
scalar dissipation (chi) and OH near the stoichiometric isosurface.
"""

from __future__ import annotations

import numpy as np


class ParallelCoordinates:
    """Brushing-capable parallel-coordinates model of a multivariate field.

    Parameters
    ----------
    variables:
        Mapping of variable name -> field array; all fields share one
        spatial shape (the voxel grid).
    """

    def __init__(self, variables: dict):
        if not variables:
            raise ValueError("need at least one variable")
        self.names = list(variables)
        shape = None
        self.data = {}
        for name, field in variables.items():
            f = np.asarray(field, dtype=float)
            if shape is None:
                shape = f.shape
            elif f.shape != shape:
                raise ValueError(f"{name} shape {f.shape} != {shape}")
            self.data[name] = f.ravel()
        self.shape = shape
        self.n_points = int(np.prod(shape))
        self.ranges = {
            name: (float(v.min()), float(v.max())) for name, v in self.data.items()
        }
        self._brushes: dict = {}

    # ------------------------------------------------------------------
    def normalized(self, name: str) -> np.ndarray:
        """Axis coordinate of every voxel for variable ``name`` in [0,1]."""
        v = self.data[name]
        lo, hi = self.ranges[name]
        return (v - lo) / (hi - lo) if hi > lo else np.zeros_like(v)

    def brush(self, name: str, lo: float, hi: float) -> None:
        """Select the interval [lo, hi] (raw units) on one axis.

        Brushes on different axes intersect (logical AND), like the
        transfer-function widgets of Fig 15.
        """
        if name not in self.data:
            raise KeyError(name)
        if hi < lo:
            lo, hi = hi, lo
        self._brushes[name] = (float(lo), float(hi))

    def clear_brush(self, name: str | None = None) -> None:
        if name is None:
            self._brushes.clear()
        else:
            self._brushes.pop(name, None)

    def selection(self) -> np.ndarray:
        """Boolean voxel mask (spatial shape) of the brushed region."""
        mask = np.ones(self.n_points, dtype=bool)
        for name, (lo, hi) in self._brushes.items():
            v = self.data[name]
            mask &= (v >= lo) & (v <= hi)
        return mask.reshape(self.shape)

    # ------------------------------------------------------------------
    def polylines(self, n_max: int = 200, selected_only: bool = True, seed: int = 0):
        """Sampled polylines: array (n_lines, n_axes) of normalized
        vertex heights — what the interface draws."""
        mask = self.selection().ravel()
        idx = np.nonzero(mask)[0] if selected_only else np.arange(self.n_points)
        if idx.size > n_max:
            idx = np.random.default_rng(seed).choice(idx, size=n_max, replace=False)
        cols = [self.normalized(name)[idx] for name in self.names]
        return np.stack(cols, axis=1)

    def axis_histogram(self, name: str, bins: int = 32):
        """(edges, counts) histogram of one axis over the selection."""
        mask = self.selection().ravel()
        counts, edges = np.histogram(
            self.data[name][mask], bins=bins, range=self.ranges[name]
        )
        return edges, counts

    def correlation(self, name_a: str, name_b: str, within_selection: bool = True) -> float:
        """Pearson correlation of two variables (over the selection).

        The Fig 15 use case: chi vs OH near the stoichiometric surface
        comes out negative.
        """
        mask = self.selection().ravel() if within_selection else np.ones(self.n_points, bool)
        a = self.data[name_a][mask]
        b = self.data[name_b][mask]
        if a.size < 2 or a.std() == 0 or b.std() == 0:
            return float("nan")
        return float(np.corrcoef(a, b)[0, 1])
