"""Time histograms (§8.2, Fig 15's temporal view).

For a time series of snapshots of one variable, the time histogram is a
2D array (time step x value bin) of voxel counts; it exposes each
variable's temporal character and helps pick time steps of interest.
"""

from __future__ import annotations

import numpy as np


class TimeHistogram:
    """Accumulates per-timestep histograms of a scalar field."""

    def __init__(self, vmin: float, vmax: float, bins: int = 64):
        if vmax <= vmin:
            raise ValueError("vmax must exceed vmin")
        self.vmin, self.vmax = float(vmin), float(vmax)
        self.bins = int(bins)
        self.edges = np.linspace(self.vmin, self.vmax, self.bins + 1)
        self._rows: list = []
        self.times: list = []

    def add_snapshot(self, t: float, field) -> None:
        counts, _ = np.histogram(
            np.asarray(field, dtype=float).ravel(),
            bins=self.edges,
        )
        self._rows.append(counts)
        self.times.append(float(t))

    @property
    def matrix(self) -> np.ndarray:
        """(n_steps, bins) count matrix."""
        return np.asarray(self._rows, dtype=float)

    def normalized(self) -> np.ndarray:
        """Rows scaled to unit max (for display)."""
        m = self.matrix
        peak = m.max(axis=1, keepdims=True)
        return m / np.maximum(peak, 1.0)

    def interesting_steps(self, k: int = 3):
        """Time indices where the distribution changed the most
        (L1 distance between consecutive normalized rows)."""
        m = self.matrix
        if len(m) < 2:
            return []
        tot = m.sum(axis=1, keepdims=True)
        p = m / np.maximum(tot, 1.0)
        d = np.abs(np.diff(p, axis=0)).sum(axis=1)
        order = np.argsort(d)[::-1][:k]
        return sorted(int(i) + 1 for i in order)

    def temporal_brush(self, lo: float, hi: float) -> np.ndarray:
        """Fraction of voxels inside [lo, hi] per time step."""
        in_range = (self.edges[:-1] >= lo) & (self.edges[1:] <= hi)
        m = self.matrix
        tot = m.sum(axis=1)
        return m[:, in_range].sum(axis=1) / np.maximum(tot, 1.0)
