"""Transfer functions: scalar value -> (RGB, opacity)."""

from __future__ import annotations

import numpy as np


class ColorMap:
    """Piecewise-linear colormap over [0, 1]."""

    def __init__(self, stops):
        """``stops`` is a list of (position, (r, g, b)) with positions
        ascending in [0, 1] and channels in [0, 1]."""
        if len(stops) < 2:
            raise ValueError("need at least two color stops")
        pos = np.array([s[0] for s in stops], dtype=float)
        if np.any(np.diff(pos) < 0):
            raise ValueError("stop positions must be ascending")
        self.pos = pos
        self.colors = np.array([s[1] for s in stops], dtype=float)

    def __call__(self, t):
        t = np.clip(np.asarray(t, dtype=float), 0.0, 1.0)
        out = np.empty(t.shape + (3,))
        for c in range(3):
            out[..., c] = np.interp(t, self.pos, self.colors[:, c])
        return out

    @classmethod
    def fire(cls):
        """Black-red-orange-yellow-white (temperature-like)."""
        return cls([
            (0.0, (0.0, 0.0, 0.0)),
            (0.35, (0.6, 0.05, 0.0)),
            (0.6, (1.0, 0.45, 0.0)),
            (0.85, (1.0, 0.85, 0.2)),
            (1.0, (1.0, 1.0, 1.0)),
        ])

    @classmethod
    def cool(cls):
        """Dark blue to cyan (radical concentration-like)."""
        return cls([
            (0.0, (0.0, 0.0, 0.15)),
            (0.5, (0.0, 0.3, 0.8)),
            (1.0, (0.3, 0.95, 1.0)),
        ])

    @classmethod
    def greens(cls):
        return cls([
            (0.0, (0.0, 0.1, 0.0)),
            (1.0, (0.4, 1.0, 0.3)),
        ])


class TransferFunction:
    """Maps raw scalar values to color and opacity.

    Parameters
    ----------
    vmin, vmax:
        Scalar range mapped onto [0, 1].
    colormap:
        A :class:`ColorMap`.
    opacity:
        Either a constant, or a list of (position, alpha) breakpoints
        over the normalized range (piecewise linear).
    """

    def __init__(self, vmin: float, vmax: float, colormap: ColorMap,
                 opacity=0.5):
        if vmax <= vmin:
            raise ValueError("vmax must exceed vmin")
        self.vmin = float(vmin)
        self.vmax = float(vmax)
        self.colormap = colormap
        if np.isscalar(opacity):
            self._op_pos = np.array([0.0, 1.0])
            self._op_val = np.array([float(opacity)] * 2)
        else:
            self._op_pos = np.array([p for p, _ in opacity], dtype=float)
            self._op_val = np.array([a for _, a in opacity], dtype=float)

    def normalize(self, values):
        return np.clip(
            (np.asarray(values, dtype=float) - self.vmin) / (self.vmax - self.vmin),
            0.0,
            1.0,
        )

    def __call__(self, values):
        """(rgb, alpha) arrays for raw scalar ``values``."""
        t = self.normalize(values)
        rgb = self.colormap(t)
        alpha = np.interp(t, self._op_pos, self._op_val)
        return rgb, alpha
