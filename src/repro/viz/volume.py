"""Software volume renderer: ray marching with front-to-back compositing.

The §8 images (Figs 10, 12, 14) are direct volume renderings of scalar
fields. This renderer marches axis-aligned rays through a 2D or 3D
scalar field, samples a transfer function, and composites front to back:

    C  += (1 - A) * a_i * c_i
    A  += (1 - A) * a_i

2D fields are rendered as a single slab (one sample per pixel), which is
what the scaled-down 2D DNS benchmarks produce.
"""

from __future__ import annotations

import numpy as np


class VolumeRenderer:
    """Axis-aligned volume renderer for fields on structured grids.

    Parameters
    ----------
    axis:
        View direction: rays integrate along this array axis.
    step_opacity_scale:
        Global opacity multiplier per sample (tune for slab thickness).
    background:
        RGB background color.
    """

    def __init__(self, axis: int = 2, step_opacity_scale: float = 1.0,
                 background=(0.0, 0.0, 0.0)):
        self.axis = int(axis)
        self.scale = float(step_opacity_scale)
        self.background = np.asarray(background, dtype=float)

    def render(self, field, transfer) -> np.ndarray:
        """Render one scalar ``field`` through ``transfer``.

        Returns an RGB image of the field's shape with the view axis
        removed (2D fields produce a (nx, ny, 3) image directly).
        """
        return self.render_multi([(field, transfer)])

    def render_multi(self, layers) -> np.ndarray:
        """Simultaneously render multiple (field, transfer) layers.

        This is the §8.1 data-fusion path: at every sample the layers'
        colors are blended weighted by their opacities before
        compositing, so spatially coexisting structures (e.g. OH and
        HO2) remain individually visible.
        """
        fields = [np.asarray(f, dtype=float) for f, _ in layers]
        shape = fields[0].shape
        for f in fields:
            if f.shape != shape:
                raise ValueError("all layers must share a shape")
        if len(shape) == 2:
            fields = [f[..., None] for f in fields]
            axis = 2
        else:
            axis = self.axis
        fields = [np.moveaxis(f, axis, -1) for f in fields]
        base = fields[0].shape[:-1]
        depth = fields[0].shape[-1]
        color = np.zeros(base + (3,))
        alpha = np.zeros(base)
        for k in range(depth):  # front to back
            rgb_mix = np.zeros(base + (3,))
            a_mix = np.zeros(base)
            for f, (_, tf) in zip(fields, layers):
                rgb, a = tf(f[..., k])
                a = a * self.scale
                rgb_mix += rgb * a[..., None]
                a_mix += a
            np.clip(a_mix, 0.0, 1.0, out=a_mix)
            safe = np.maximum(a_mix, 1e-12)
            rgb_eff = rgb_mix / safe[..., None]
            trans = 1.0 - alpha
            color += (trans * a_mix)[..., None] * rgb_eff
            alpha += trans * a_mix
            if np.all(alpha > 0.999):
                break
        color += (1.0 - alpha)[..., None] * self.background
        return np.clip(color, 0.0, 1.0)


def render_isosurface_mask(field, level: float, width: float | None = None):
    """Soft mask highlighting the ``field == level`` band.

    Used to overlay the stoichiometric mixture-fraction isosurface on
    volume renderings (Fig 14's gold surface). Returns values in [0, 1]
    peaking on the isosurface.
    """
    f = np.asarray(field, dtype=float)
    if width is None:
        width = 0.05 * (f.max() - f.min() + 1e-300)
    return np.exp(-((f - level) / width) ** 2)
