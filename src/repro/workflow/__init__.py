"""Workflow substrate: the Kepler-based S3D automation of §9.

An actor-oriented workflow engine in the Ptolemy II mould: data-centric
actors connected by typed channels, with the execution semantics
supplied by a separate director (§9's "actor-oriented modeling").
On top of it, the S3D monitoring workflow of Fig 16: three parallel
pipelines (restart/analysis, netCDF transformation, min/max logs)
spanning a simulated jaguar -> ewok -> {HPSS, Sandia, UC Davis}
environment, with the ProcessFile actor's checkpoint/restart fault
tolerance and the FileWatcher's indirect coupling to the running
simulation.

* :mod:`repro.workflow.actor` / :mod:`repro.workflow.graph` /
  :mod:`repro.workflow.director` — the engine,
* :mod:`repro.workflow.environment` — machines, remote execution,
  file stores, transfer costs, fault injection,
* :mod:`repro.workflow.actors` — FileWatcher, ProcessFile, Transfer,
  Morph, Archive, plotting actors,
* :mod:`repro.workflow.provenance` — data/workflow provenance,
* :mod:`repro.workflow.s3d_pipeline` — Fig 16's workflow,
* :mod:`repro.workflow.dashboard` — the Figs 17-18 web-dashboard model.
"""

from repro.workflow.actor import Actor, Port, Token
from repro.workflow.graph import Workflow
from repro.workflow.director import ActorFiringError, ProcessNetworkDirector
from repro.workflow.environment import (
    Environment,
    Machine,
    RemoteError,
    RemoteTimeoutError,
)
from repro.workflow.actors import (
    FileWatcher,
    ProcessFile,
    Transfer,
    Morph,
    Archive,
    MinMaxParser,
    PlotImages,
)
from repro.workflow.provenance import ProvenanceStore
from repro.workflow.s3d_pipeline import build_s3d_workflow, simulate_s3d_run
from repro.workflow.dashboard import Dashboard

__all__ = [
    "Actor",
    "Port",
    "Token",
    "Workflow",
    "ProcessNetworkDirector",
    "ActorFiringError",
    "Environment",
    "Machine",
    "RemoteError",
    "RemoteTimeoutError",
    "FileWatcher",
    "ProcessFile",
    "Transfer",
    "Morph",
    "Archive",
    "MinMaxParser",
    "PlotImages",
    "ProvenanceStore",
    "build_s3d_workflow",
    "simulate_s3d_run",
    "Dashboard",
]
