"""Actors, ports, tokens — the data-centric components of §9.

An :class:`Actor` declares named input and output ports; during
execution, the director moves :class:`Token` objects along channels and
calls :meth:`Actor.fire` whenever the actor's firing rule is satisfied
(by default: at least one token on every *required* input port).
Actors never touch the scheduling — that separation of computation from
control flow is the actor-oriented design point the paper highlights.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_token_counter = itertools.count()


@dataclass
class Token:
    """One unit of data flowing through the workflow."""

    value: object
    provenance: tuple = ()
    uid: int = field(default_factory=lambda: next(_token_counter))

    def derive(self, value, activity: str) -> "Token":
        """A new token derived from this one by ``activity``."""
        return Token(value=value, provenance=self.provenance + ((activity, self.uid),))


@dataclass
class Port:
    """A named input or output connection point."""

    name: str
    required: bool = True


class Actor:
    """Base class for workflow actors.

    Subclasses define ``inputs``/``outputs`` (lists of :class:`Port` or
    names) and implement :meth:`fire`, receiving a dict of input tokens
    and returning a dict ``{output_port: token_or_value}`` (values are
    wrapped into fresh tokens). Source actors (no inputs) are fired by
    the director each iteration until they report exhaustion by
    returning None.
    """

    inputs: list = []
    outputs: list = []

    def __init__(self, name: str):
        self.name = name
        self.in_ports = [p if isinstance(p, Port) else Port(p) for p in self.inputs]
        self.out_ports = [p if isinstance(p, Port) else Port(p) for p in self.outputs]
        self.fired = 0

    def input_names(self):
        return [p.name for p in self.in_ports]

    def output_names(self):
        return [p.name for p in self.out_ports]

    def ready(self, available: dict) -> bool:
        """Firing rule: every required input has a token waiting."""
        return all(
            available.get(p.name, 0) > 0 for p in self.in_ports if p.required
        )

    def fire(self, inputs: dict) -> dict | None:
        """Consume inputs, produce outputs. None = nothing produced."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionActor(Actor):
    """Wrap a plain callable as a 1-in/1-out actor."""

    inputs = ["in"]
    outputs = ["out"]

    def __init__(self, name: str, fn):
        super().__init__(name)
        self.fn = fn

    def fire(self, inputs: dict) -> dict:
        tok = inputs["in"]
        return {"out": tok.derive(self.fn(tok.value), self.name)}
