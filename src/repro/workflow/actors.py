"""The S3D workflow actor library (§9).

* :class:`FileWatcher` — "a generic component to regularly check a
  remote directory for new or modified files", creating the indirect
  coupling between the running simulation and the workflow. Follows the
  paper's completion protocol: a file is only emitted once the
  simulation's log records that its time step's output is complete.
* :class:`ProcessFile` — "models the execution of an operation on a
  remote file as a (sub-)workflow": runs a registered command over ssh,
  keeps a checkpoint of successfully processed files (so restarted
  workflows skip completed work), retries failures, and logs errors.
* :class:`Transfer` — multi-stream file movement between machines.
* :class:`Morph` — N restart files -> M merged analysis files.
* :class:`Archive` — copy to the HPSS machine.
* :class:`MinMaxParser` — parse the ASCII min/max monitoring files into
  dashboard time series.
* :class:`PlotImages` — stand-in for the Grace/AVS-Express render step.
"""

from __future__ import annotations

import json

from repro.telemetry import resolve as resolve_telemetry
from repro.workflow.actor import Actor, Port, Token
from repro.workflow.environment import RemoteError


class FileWatcher(Actor):
    """Source actor: emits newly completed files of a directory."""

    inputs: list = []
    outputs = ["file"]

    def __init__(self, name: str, env, machine: str, prefix: str,
                 completion_log: str | None = None, telemetry=None):
        super().__init__(name)
        self.env = env
        self.machine = machine
        self.prefix = prefix
        self.completion_log = completion_log
        self.seen: set = set()
        self._c_emitted = resolve_telemetry(telemetry).counter(
            "workflow.files_emitted")

    def _completed(self) -> set | None:
        """Filenames marked complete in the simulation's log (§9: 'the
        workflow watches a log file ... for an entry indicating that the
        output for that timestep is complete')."""
        if self.completion_log is None:
            return None
        m = self.env[self.machine]
        if not m.exists(self.completion_log):
            return set()
        lines = m.read(self.completion_log).decode().splitlines()
        return {l.split()[-1] for l in lines if l.startswith("COMPLETE")}

    def fire(self, inputs):
        m = self.env[self.machine]
        done = self._completed()
        for path in m.listdir(self.prefix):
            if path in self.seen:
                continue
            if done is not None and path not in done:
                continue
            self.seen.add(path)
            self._c_emitted.inc()
            return {"file": Token(path)}
        return None


class ProcessFile(Actor):
    """Checkpointed, retrying remote file operation."""

    inputs = ["file"]
    outputs = ["file", "errors"]

    def __init__(self, name: str, env, machine: str, command: str,
                 checkpoint_store: dict | None = None, max_retries: int = 3,
                 transform_path=None, telemetry=None):
        super().__init__(name)
        self.env = env
        self.machine = machine
        self.command = command
        #: persistent record of completed inputs (survives restarts when
        #: the same dict is handed to the rebuilt workflow)
        self.checkpoint = checkpoint_store if checkpoint_store is not None else {}
        self.max_retries = int(max_retries)
        self.transform_path = transform_path or (lambda p: p)
        self.log: list = []
        self.skipped = 0
        tel = resolve_telemetry(telemetry)
        self._c_retries = tel.counter("workflow.process.retries")
        self._c_failures = tel.counter("workflow.process.failures")

    def fire(self, inputs):
        token = inputs["file"]
        path = token.value
        out_path = self.transform_path(path)
        key = f"{self.name}:{path}"
        if self.checkpoint.get(key) == "done":
            self.skipped += 1
            self.log.append(("skip", path))
            return {"file": token.derive(out_path, f"{self.name}(cached)")}
        last_error = None
        for attempt in range(1 + self.max_retries):
            try:
                self.env.execute(self.machine, self.command, path, out_path)
                self.checkpoint[key] = "done"
                self.log.append(("ok", path, attempt))
                return {"file": token.derive(out_path, self.name)}
            except RemoteError as err:
                last_error = err
                self._c_retries.inc()
                self.log.append(("retry", path, attempt, str(err)))
        self.checkpoint[key] = "failed"
        self._c_failures.inc()
        self.log.append(("failed", path, str(last_error)))
        return {"errors": token.derive(str(last_error), f"{self.name}(error)")}


class Transfer(Actor):
    """Move a file between machines (multi-stream scp/bbcp model)."""

    inputs = ["file"]
    outputs = ["file"]

    def __init__(self, name: str, env, src: str, dst: str, streams: int = 4,
                 checkpoint_store: dict | None = None, max_retries: int = 3,
                 telemetry=None):
        super().__init__(name)
        self.env = env
        self.src = src
        self.dst = dst
        self.streams = int(streams)
        self.checkpoint = checkpoint_store if checkpoint_store is not None else {}
        self.max_retries = int(max_retries)
        self.skipped = 0
        self.log: list = []
        tel = resolve_telemetry(telemetry)
        self._c_transfers = tel.counter("workflow.transfer.count")
        self._c_retries = tel.counter("workflow.transfer.retries")

    def fire(self, inputs):
        token = inputs["file"]
        path = token.value
        key = f"{self.name}:{path}"
        if self.checkpoint.get(key) == "done":
            self.skipped += 1
            return {"file": token.derive(path, f"{self.name}(cached)")}
        for attempt in range(1 + self.max_retries):
            try:
                self.env.transfer(self.src, path, self.dst, path,
                                  streams=self.streams)
                self.checkpoint[key] = "done"
                self._c_transfers.inc()
                self.log.append(("ok", path, attempt))
                return {"file": token.derive(path, self.name)}
            except RemoteError as err:
                self._c_retries.inc()
                self.log.append(("retry", path, attempt, str(err)))
        # leave unmarked so a restarted workflow retries the move
        self.checkpoint[key] = "failed"
        self.log.append(("failed", path))
        return None


class Morph(Actor):
    """Merge N restart files into one analysis file (data morphing).

    Accumulates incoming files until ``group_size`` arrive, then writes
    the concatenated morph output on the target machine.
    """

    inputs = ["file"]
    outputs = ["file"]

    def __init__(self, name: str, env, machine: str, group_size: int,
                 out_pattern: str = "morph/{index:04d}.dat"):
        super().__init__(name)
        self.env = env
        self.machine = machine
        self.group_size = int(group_size)
        self.out_pattern = out_pattern
        self._pending: list = []
        self._index = 0

    def fire(self, inputs):
        token = inputs["file"]
        self._pending.append(token)
        if len(self._pending) < self.group_size:
            return None
        m = self.env[self.machine]
        data = b"".join(m.read(t.value) for t in self._pending)
        out = self.out_pattern.format(index=self._index)
        m.write(out, data)
        self._index += 1
        prov = tuple(
            item for t in self._pending for item in t.provenance
        ) + tuple((self.name, t.uid) for t in self._pending)
        merged = Token(out, provenance=prov)
        self._pending = []
        return {"file": merged}


class Archive(Actor):
    """Copy a file to the archival machine (HPSS)."""

    inputs = ["file"]
    outputs = ["file"]

    def __init__(self, name: str, env, src: str, archive_machine: str = "hpss"):
        super().__init__(name)
        self.env = env
        self.src = src
        self.dst = archive_machine

    def fire(self, inputs):
        token = inputs["file"]
        self.env.transfer(self.src, token.value, self.dst, token.value, streams=2)
        return {"file": token.derive(token.value, self.name)}


class MinMaxParser(Actor):
    """Parse ASCII min/max monitoring files into dashboard series."""

    inputs = ["file"]
    outputs = ["series"]

    def __init__(self, name: str, env, machine: str):
        super().__init__(name)
        self.env = env
        self.machine = machine

    def fire(self, inputs):
        token = inputs["file"]
        text = self.env[self.machine].read(token.value).decode()
        rows = []
        for line in text.splitlines():
            parts = line.split()
            if len(parts) >= 4:
                rows.append(
                    {
                        "step": int(parts[0]),
                        "variable": parts[1],
                        "min": float(parts[2]),
                        "max": float(parts[3]),
                    }
                )
        return {"series": token.derive(rows, self.name)}


class PlotImages(Actor):
    """Stand-in for the Grace / AVS-Express plotting service: turns a
    netCDF-ish file into an 'image' artifact on the same machine."""

    inputs = ["file"]
    outputs = ["image"]

    def __init__(self, name: str, env, machine: str):
        super().__init__(name)
        self.env = env
        self.machine = machine

    def fire(self, inputs):
        token = inputs["file"]
        m = self.env[self.machine]
        payload = m.read(token.value)
        out = token.value + ".png"
        meta = {"source": token.value, "bytes": len(payload)}
        m.write(out, json.dumps(meta).encode())
        return {"image": token.derive(out, self.name)}


class Collector(Actor):
    """Sink collecting every token it receives (test/dashboard tap)."""

    inputs = ["in"]
    outputs: list = []

    def __init__(self, name: str):
        super().__init__(name)
        self.items: list = []

    def fire(self, inputs):
        self.items.append(inputs["in"])
        return None
