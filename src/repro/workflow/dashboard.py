"""The web-dashboard model (Figs 17-18).

Holds what the paper's AJAX dashboard shows: per-machine job queues
(Fig 18), per-variable min/max time traces with their latest plots
(Fig 17), image registries with user annotations, and a simple text
rendering. The data model is fed by the workflow's dashboard taps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Job:
    job_id: str
    machine: str
    user: str
    state: str = "running"  # running | queued | done | failed
    name: str = "S3D"


class Dashboard:
    """In-memory dashboard state + text renderer."""

    def __init__(self):
        self.jobs: dict = {}
        #: variable -> list of (step, min, max)
        self.series: dict = defaultdict(list)
        #: image path -> list of annotations
        self.images: dict = {}
        self.annotations: dict = defaultdict(list)
        #: job_id -> latest health summary (watchdog statuses etc.)
        self.health: dict = {}
        #: job_id -> latest metrics snapshot (counters/gauges), fed by
        #: MetricsEndpoint.publish or an external /metrics scrape
        self.metrics: dict = {}

    # -- job monitoring (Fig 18) ------------------------------------------
    def submit_job(self, job_id: str, machine: str, user: str, name: str = "S3D") -> Job:
        job = Job(job_id=job_id, machine=machine, user=user, state="queued", name=name)
        self.jobs[job_id] = job
        return job

    def set_job_state(self, job_id: str, state: str) -> None:
        if state not in ("running", "queued", "done", "failed"):
            raise ValueError(f"bad job state {state!r}")
        self.jobs[job_id].state = state

    def jobs_on(self, machine: str) -> list:
        return [j for j in self.jobs.values() if j.machine == machine]

    # -- min/max traces (Fig 17) -------------------------------------------
    def update_series(self, rows) -> None:
        """Ingest MinMaxParser rows ({step, variable, min, max})."""
        for row in rows:
            self.series[row["variable"]].append(
                (row["step"], row["min"], row["max"])
            )

    def latest(self, variable: str):
        s = self.series.get(variable)
        return s[-1] if s else None

    def trace(self, variable: str):
        """(steps, mins, maxs) arrays for plotting."""
        s = sorted(self.series.get(variable, []))
        steps = [r[0] for r in s]
        return steps, [r[1] for r in s], [r[2] for r in s]

    # -- health observatory feed -------------------------------------------
    def update_health(self, job_id: str, monitor) -> dict:
        """Ingest a solver health monitor's current status for a job.

        Accepts a :class:`~repro.observability.monitor.HealthMonitor`
        (or anything with ``status()``/``checks``/``warns``/``trips``)
        and keeps the latest summary for :meth:`render_text`. A run with
        any tripped watchdog flips the job state to ``failed``.
        """
        summary = {
            "watchdogs": dict(monitor.status()),
            "checks": monitor.checks,
            "warns": monitor.warns,
            "trips": monitor.trips,
        }
        self.health[job_id] = summary
        if monitor.trips and job_id in self.jobs:
            self.set_job_state(job_id, "failed")
        return summary

    def ingest_flight_record(self, job_id: str, parsed: dict) -> None:
        """Ingest a parsed flight-recorder dump: every retained step's
        extrema feed the Fig 17 min/max traces, and the final step's
        watchdog statuses become the job's health summary."""
        steps = parsed.get("steps", [])
        for rec in steps:
            for var, (lo, hi) in rec.get("extrema", {}).items():
                self.series[var].append((rec["step"], lo, hi))
        summary = parsed.get("summary") or {}
        last = steps[-1] if steps else {}
        self.health[job_id] = {
            "watchdogs": dict(last.get("watchdogs", {})),
            "checks": summary.get("steps_seen", len(steps)),
            "warns": summary.get("warns", 0),
            "trips": summary.get("trips", 0),
        }

    def ingest_metrics(self, job_id: str, snapshot: dict) -> None:
        """Ingest a metrics-registry snapshot for a job.

        Accepts the plain-data dict of ``MetricsRegistry.snapshot()`` —
        typically pushed by
        :meth:`repro.observability.endpoint.MetricsEndpoint.publish` or
        rebuilt from a ``/metrics`` scrape. Only the latest snapshot per
        job is kept (the dashboard shows current state, not history)."""
        self.metrics[job_id] = {
            "counters": dict(snapshot.get("counters", {})),
            "gauges": dict(snapshot.get("gauges", {})),
        }

    # -- images + annotations ----------------------------------------------
    def register_image(self, path: str, meta=None) -> None:
        self.images[path] = meta or {}

    def annotate(self, path: str, user: str, note: str) -> None:
        if path not in self.images:
            raise KeyError(f"unknown image {path!r}")
        self.annotations[path].append((user, note))

    # -- rendering -----------------------------------------------------------
    def render_text(self) -> str:
        lines = ["=== S3D dashboard ==="]
        machines = sorted({j.machine for j in self.jobs.values()})
        for m in machines:
            lines.append(f"[{m}]")
            for j in self.jobs_on(m):
                lines.append(f"  {j.job_id:<12s} {j.name:<8s} {j.user:<10s} {j.state}")
        if self.series:
            lines.append("[min/max traces]")
            for var in sorted(self.series):
                step, lo, hi = self.series[var][-1]
                lines.append(f"  {var:<12s} step {step:>8d}  min {lo:.6g}  max {hi:.6g}")
        if self.health:
            lines.append("[health]")
            for job_id in sorted(self.health):
                h = self.health[job_id]
                dogs = " ".join(f"{k}={v}" for k, v in
                                sorted(h["watchdogs"].items())) or "no checks"
                lines.append(
                    f"  {job_id:<12s} checks {h['checks']:>6d}  "
                    f"warns {h['warns']}  trips {h['trips']}  {dogs}"
                )
        if self.metrics:
            lines.append("[metrics]")
            for job_id in sorted(self.metrics):
                m = self.metrics[job_id]
                lines.append(
                    f"  {job_id:<12s} {len(m['counters'])} counters  "
                    f"{len(m['gauges'])} gauges"
                )
                for name in sorted(m["gauges"])[:4]:
                    lines.append(f"    {name:<28s} {m['gauges'][name]:.6g}")
        if self.images:
            lines.append(f"[images] {len(self.images)} registered")
        return "\n".join(lines)
