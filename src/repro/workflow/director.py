"""Directors: the separated control-flow semantics of Ptolemy II (§9).

:class:`ProcessNetworkDirector` runs the graph in rounds: every source
actor is polled once per round (FileWatcher-style), then data-driven
actors fire while their firing rules are satisfied. Execution stops
when a round moves no tokens (quiescence) or the round limit is hit.
The concurrency/pipelining the paper wants from Kepler (plotting one
file while transferring the next) appears as interleaved firings within
a round.
"""

from __future__ import annotations

from repro.telemetry import resolve as resolve_telemetry
from repro.workflow.actor import Token


class ProcessNetworkDirector:
    """Round-based dataflow execution.

    Telemetry: every firing runs under a per-actor span
    (``actor.<name>``), and ``workflow.firings`` / ``workflow.rounds``
    counters accumulate, so a run of the §9 pipeline yields the same
    exclusive-time breakdown the solver kernels get.
    """

    def __init__(self, workflow, max_rounds: int = 1000, max_firings_per_round: int = 10000,
                 telemetry=None):
        self.workflow = workflow
        self.max_rounds = int(max_rounds)
        self.max_firings = int(max_firings_per_round)
        self.telemetry = resolve_telemetry(telemetry)
        self.rounds = 0
        self.firings = 0
        self.trace: list = []  # (round, actor_name) firing log

    def _fire(self, actor, inputs):
        with self.telemetry.span(f"actor.{actor.name}"):
            return actor.fire(inputs)

    def _emit(self, actor, outputs: dict) -> None:
        for port, value in (outputs or {}).items():
            token = value if isinstance(value, Token) else Token(value)
            self.workflow.deliver(actor.name, port, token)

    def step_round(self) -> int:
        """One round; returns the number of firings it performed."""
        wf = self.workflow
        fired = 0
        # poll sources once per round
        for actor in wf.sources():
            outputs = self._fire(actor, {})
            if outputs:
                actor.fired += 1
                fired += 1
                self.firings += 1
                self.trace.append((self.rounds, actor.name))
                self._emit(actor, outputs)
        # drain data-driven actors
        progress = True
        while progress and fired < self.max_firings:
            progress = False
            for actor in wf.actors.values():
                if not actor.in_ports:
                    continue
                if actor.ready(wf.available(actor)):
                    inputs = wf.consume(actor)
                    outputs = self._fire(actor, inputs)
                    actor.fired += 1
                    fired += 1
                    self.firings += 1
                    self.trace.append((self.rounds, actor.name))
                    if outputs:
                        self._emit(actor, outputs)
                    progress = True
        self.rounds += 1
        self.telemetry.counter("workflow.rounds").inc()
        self.telemetry.counter("workflow.firings").inc(fired)
        return fired

    def run(self, until_idle: bool = True, rounds: int | None = None) -> None:
        """Run rounds until quiescent (or for a fixed count)."""
        self.workflow.validate()
        limit = rounds if rounds is not None else self.max_rounds
        idle_rounds = 0
        for _ in range(limit):
            fired = self.step_round()
            if until_idle and rounds is None:
                # sources may be waiting on external files: stop after
                # two consecutive silent rounds
                idle_rounds = idle_rounds + 1 if fired == 0 else 0
                if idle_rounds >= 2:
                    break
