"""Directors: the separated control-flow semantics of Ptolemy II (§9).

:class:`ProcessNetworkDirector` runs the graph in rounds: every source
actor is polled once per round (FileWatcher-style), then data-driven
actors fire while their firing rules are satisfied. Execution stops
when a round moves no tokens (quiescence) or the round limit is hit.
The concurrency/pipelining the paper wants from Kepler (plotting one
file while transferring the next) appears as interleaved firings within
a round.

Fault handling: an actor that raises no longer kills the director with
an anonymous traceback. Every firing failure is recorded with the actor
name and round and counted in telemetry; in the default ``"raise"``
policy the director surfaces an :class:`ActorFiringError` naming the
culprit, while ``on_error="degrade"`` keeps the pipeline running —
failed firings are retried up to ``actor_retries`` times with the same
inputs, and an actor failing ``max_actor_failures`` consecutive times
has its circuit opened for ``breaker_cooldown`` rounds (it is skipped,
its input tokens left queued), so one flaky actor degrades rather than
halts the whole pipeline. A wall-clock ``actor_timeout`` marks firings
that overran as failures post-hoc (cooperative actors cannot be
preempted in-process).
"""

from __future__ import annotations

import time

from repro.telemetry import resolve as resolve_telemetry
from repro.workflow.actor import Token


class ActorFiringError(RuntimeError):
    """An actor raised during a firing; names the actor and round."""

    def __init__(self, actor_name: str, round_no: int, original: BaseException):
        super().__init__(
            f"actor {actor_name!r} failed in round {round_no}: "
            f"{type(original).__name__}: {original}"
        )
        self.actor_name = actor_name
        self.round_no = round_no
        self.original = original


class ProcessNetworkDirector:
    """Round-based dataflow execution.

    Telemetry: every firing runs under a per-actor span
    (``actor.<name>``), and ``workflow.firings`` / ``workflow.rounds``
    counters accumulate, so a run of the §9 pipeline yields the same
    exclusive-time breakdown the solver kernels get. Failures add
    ``workflow.actor_errors`` / ``workflow.actor_retries`` /
    ``workflow.breaker_opened``.

    Parameters
    ----------
    on_error:
        ``"raise"`` (default) — a failing actor aborts the run with an
        :class:`ActorFiringError`; ``"degrade"`` — the failure is
        recorded and the pipeline continues.
    actor_retries:
        Immediate re-firings of a failed actor with the same inputs
        (on top of any retrying the actor does internally).
    max_actor_failures:
        Consecutive failures (after retries) before an actor's circuit
        opens. Only meaningful under ``"degrade"``.
    breaker_cooldown:
        Rounds a tripped actor is skipped before a half-open trial
        firing; a failure there reopens the circuit.
    actor_timeout:
        Wall-clock seconds; a firing exceeding it is recorded as a
        failure (post-hoc) even if it returned.
    """

    def __init__(self, workflow, max_rounds: int = 1000, max_firings_per_round: int = 10000,
                 telemetry=None, on_error: str = "raise", actor_retries: int = 0,
                 max_actor_failures: int = 3, breaker_cooldown: int = 2,
                 actor_timeout: float | None = None):
        if on_error not in ("raise", "degrade"):
            raise ValueError(f"on_error must be 'raise' or 'degrade', got {on_error!r}")
        self.workflow = workflow
        self.max_rounds = int(max_rounds)
        self.max_firings = int(max_firings_per_round)
        self.telemetry = resolve_telemetry(telemetry)
        self.on_error = on_error
        self.actor_retries = int(actor_retries)
        self.max_actor_failures = int(max_actor_failures)
        self.breaker_cooldown = int(breaker_cooldown)
        self.actor_timeout = actor_timeout
        self.rounds = 0
        self.firings = 0
        self.trace: list = []  # (round, actor_name) firing log
        #: (round, actor_name, error_repr) for every failed firing
        self.failures: list = []
        #: consecutive-failure count per actor (resets on success)
        self._strikes: dict = {}
        #: actor_name -> round at which its circuit closes again
        self._open_until: dict = {}
        self._c_errors = self.telemetry.counter("workflow.actor_errors")
        self._c_retries = self.telemetry.counter("workflow.actor_retries")
        self._c_breaker = self.telemetry.counter("workflow.breaker_opened")

    # ------------------------------------------------------------------
    def circuit_open(self, actor_name: str) -> bool:
        """True while ``actor_name``'s breaker keeps it out of rounds."""
        return self._open_until.get(actor_name, -1) > self.rounds

    def _record_failure(self, actor, err: BaseException) -> None:
        self.failures.append((self.rounds, actor.name, f"{type(err).__name__}: {err}"))
        self._c_errors.inc()
        strikes = self._strikes.get(actor.name, 0) + 1
        self._strikes[actor.name] = strikes
        if self.on_error == "degrade" and strikes >= self.max_actor_failures:
            self._open_until[actor.name] = self.rounds + 1 + self.breaker_cooldown
            # half-open on expiry: one more failure re-trips immediately
            self._strikes[actor.name] = self.max_actor_failures - 1
            self._c_breaker.inc()

    def _fire(self, actor, inputs):
        """One guarded firing: span, bounded retry, failure accounting.

        Returns ``(fired, outputs)`` — ``fired`` False means the firing
        failed terminally under the degrade policy (inputs consumed,
        nothing produced).
        """
        attempts = 1 + max(0, self.actor_retries)
        for attempt in range(attempts):
            t0 = time.monotonic()
            try:
                with self.telemetry.span(f"actor.{actor.name}"):
                    outputs = actor.fire(inputs)
            except Exception as err:  # noqa: BLE001 — reported, not hidden
                if attempt + 1 < attempts:
                    self._c_retries.inc()
                    continue
                self._record_failure(actor, err)
                if self.on_error == "raise":
                    raise ActorFiringError(actor.name, self.rounds, err) from err
                return False, None
            if (self.actor_timeout is not None
                    and time.monotonic() - t0 > self.actor_timeout):
                self._record_failure(
                    actor, TimeoutError(
                        f"firing exceeded {self.actor_timeout}s wall clock"
                    ))
                # the outputs exist and cannot be retracted; deliver
                # them, but the strike still counts toward the breaker
                return True, outputs
            self._strikes[actor.name] = 0
            return True, outputs
        return False, None  # pragma: no cover — loop always returns

    def _emit(self, actor, outputs: dict) -> None:
        for port, value in (outputs or {}).items():
            token = value if isinstance(value, Token) else Token(value)
            self.workflow.deliver(actor.name, port, token)

    def step_round(self) -> int:
        """One round; returns the number of firings it performed."""
        wf = self.workflow
        fired = 0
        # poll sources once per round
        for actor in wf.sources():
            if self.circuit_open(actor.name):
                continue
            ok, outputs = self._fire(actor, {})
            if ok and outputs:
                actor.fired += 1
                fired += 1
                self.firings += 1
                self.trace.append((self.rounds, actor.name))
                self._emit(actor, outputs)
        # drain data-driven actors
        progress = True
        while progress and fired < self.max_firings:
            progress = False
            for actor in wf.actors.values():
                if not actor.in_ports:
                    continue
                if self.circuit_open(actor.name):
                    continue
                if actor.ready(wf.available(actor)):
                    inputs = wf.consume(actor)
                    ok, outputs = self._fire(actor, inputs)
                    if not ok:
                        # inputs are spent; count the failed firing as
                        # progress so siblings keep draining
                        progress = True
                        continue
                    actor.fired += 1
                    fired += 1
                    self.firings += 1
                    self.trace.append((self.rounds, actor.name))
                    if outputs:
                        self._emit(actor, outputs)
                    progress = True
        self.rounds += 1
        self.telemetry.counter("workflow.rounds").inc()
        self.telemetry.counter("workflow.firings").inc(fired)
        return fired

    def run(self, until_idle: bool = True, rounds: int | None = None) -> None:
        """Run rounds until quiescent (or for a fixed count)."""
        self.workflow.validate()
        limit = rounds if rounds is not None else self.max_rounds
        idle_rounds = 0
        for _ in range(limit):
            fired = self.step_round()
            if until_idle and rounds is None:
                # sources may be waiting on external files: stop after
                # two consecutive silent rounds
                idle_rounds = idle_rounds + 1 if fired == 0 else 0
                if idle_rounds >= 2:
                    break
