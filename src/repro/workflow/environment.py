"""Simulated multi-machine environment for the S3D workflow (§9).

Machines (jaguar, ewok, HPSS, Sandia, UC Davis) each carry a simple
file store and a registry of executable commands (the stand-ins for the
tar/scp/Python scripts the real workflow runs over ssh). Transfers
between machines charge a per-link bandwidth (the paper moves restart
data at ~100 MB/s over parallel ssh streams). Fault injection makes
commands or transfers fail on demand so the ProcessFile
checkpoint/retry machinery can be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.faults import resolve_injector


class RemoteError(RuntimeError):
    """A remote command or transfer failed."""


class RemoteTimeoutError(RemoteError):
    """A remote command or transfer timed out (retryable like any
    RemoteError; kept distinct so logs can tell hangs from faults)."""


@dataclass
class Machine:
    """One host: a flat file store plus registered commands."""

    name: str
    files: dict = field(default_factory=dict)  # path -> bytes
    commands: dict = field(default_factory=dict)

    def write(self, path: str, data: bytes) -> None:
        self.files[path] = bytes(data)

    def read(self, path: str) -> bytes:
        try:
            return self.files[path]
        except KeyError:
            raise RemoteError(f"{self.name}: no such file {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self.files

    def listdir(self, prefix: str) -> list:
        return sorted(p for p in self.files if p.startswith(prefix))

    def register(self, name: str, fn) -> None:
        """Register a command: fn(machine, *args) -> result."""
        self.commands[name] = fn


class Environment:
    """The machine fleet plus the wide-area network between them.

    Fault injection: :meth:`fail_next` arms one-shot failures by name
    (the original knob the ProcessFile tests use); a seeded
    :class:`~repro.resilience.faults.FaultInjector` arms *scheduled*
    failures at the sites ``workflow.transfer`` and
    ``workflow.command`` (or ``workflow.command.<name>`` for one
    command), with mode ``timeout`` raising
    :class:`RemoteTimeoutError` instead of a plain failure.
    """

    def __init__(self, link_bandwidth: float = 100e6, link_latency: float = 0.05,
                 fault_injector=None):
        self.machines: dict = {}
        self.link_bandwidth = float(link_bandwidth)
        self.link_latency = float(link_latency)
        self.faults = resolve_injector(fault_injector)
        self.transfer_time = 0.0
        self.transfer_bytes = 0
        self.command_time = 0.0
        self._fail_queue: dict = {}
        self.failures_injected = 0

    def add_machine(self, name: str) -> Machine:
        if name in self.machines:
            raise ValueError(f"duplicate machine {name!r}")
        m = Machine(name)
        self.machines[name] = m
        return m

    def __getitem__(self, name: str) -> Machine:
        return self.machines[name]

    # ------------------------------------------------------------------
    def fail_next(self, kind: str, count: int = 1) -> None:
        """Arm fault injection: the next ``count`` operations whose name
        matches ``kind`` (command name or "transfer") raise."""
        self._fail_queue[kind] = self._fail_queue.get(kind, 0) + count

    def _maybe_fail(self, kind: str) -> None:
        if self._fail_queue.get(kind, 0) > 0:
            self._fail_queue[kind] -= 1
            self.failures_injected += 1
            raise RemoteError(f"injected failure in {kind!r}")
        if self.faults.enabled:
            site = ("workflow.transfer" if kind == "transfer"
                    else f"workflow.command.{kind}")
            spec = self.faults.decide(site) or (
                None if kind == "transfer" else self.faults.decide("workflow.command")
            )
            if spec is not None:
                self.failures_injected += 1
                if spec.mode == "timeout":
                    raise RemoteTimeoutError(f"injected timeout in {kind!r}")
                raise RemoteError(f"injected failure in {kind!r}")

    # ------------------------------------------------------------------
    def transfer(self, src: str, src_path: str, dst: str, dst_path: str,
                 streams: int = 1) -> float:
        """Copy one file between machines; returns elapsed link time.

        ``streams`` models the paper's multi-ssh parallel mover (the
        restart pipeline moves data at 100 MB/s via multiple
        connections, 350 MB/s theoretical with more).
        """
        self._maybe_fail("transfer")
        data = self.machines[src].read(src_path)
        self.machines[dst].write(dst_path, data)
        elapsed = self.link_latency + len(data) / (self.link_bandwidth * max(1, streams))
        self.transfer_time += elapsed
        self.transfer_bytes += len(data)
        return elapsed

    def execute(self, machine: str, command: str, *args, cost: float = 0.01):
        """Run a registered command remotely ("ssh machine command")."""
        self._maybe_fail(command)
        m = self.machines[machine]
        if command not in m.commands:
            raise RemoteError(f"{machine}: unknown command {command!r}")
        self.command_time += cost
        return m.commands[command](m, *args)
