"""Workflow graph: actors + channels (§9's "graph of independent
components called actors where the edges denote communication links")."""

from __future__ import annotations

from collections import defaultdict, deque


class Workflow:
    """A directed graph of actors connected port-to-port."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self.actors: dict = {}
        #: channels[(src, src_port)] -> list of (dst, dst_port)
        self.channels: dict = defaultdict(list)
        #: queues[(dst, dst_port)] -> deque of tokens
        self.queues: dict = defaultdict(deque)

    def add(self, actor):
        if actor.name in self.actors:
            raise ValueError(f"duplicate actor name {actor.name!r}")
        self.actors[actor.name] = actor
        return actor

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> None:
        """Wire an output port to an input port (fan-out allowed)."""
        s, d = self.actors[src], self.actors[dst]
        if src_port not in s.output_names():
            raise ValueError(f"{src} has no output port {src_port!r}")
        if dst_port not in d.input_names():
            raise ValueError(f"{dst} has no input port {dst_port!r}")
        self.channels[(src, src_port)].append((dst, dst_port))

    # ------------------------------------------------------------------
    def deliver(self, src_name: str, src_port: str, token) -> None:
        """Push a token down every channel connected to (src, src_port)."""
        for dst_name, dst_port in self.channels[(src_name, src_port)]:
            self.queues[(dst_name, dst_port)].append(token)

    def available(self, actor) -> dict:
        """Tokens waiting per input port of ``actor``."""
        return {
            p.name: len(self.queues[(actor.name, p.name)]) for p in actor.in_ports
        }

    def consume(self, actor) -> dict:
        """Pop one token from each non-empty input port."""
        out = {}
        for p in actor.in_ports:
            q = self.queues[(actor.name, p.name)]
            if q:
                out[p.name] = q.popleft()
        return out

    def pending_tokens(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def sources(self) -> list:
        """Actors with no input ports (fired unconditionally)."""
        return [a for a in self.actors.values() if not a.in_ports]

    def validate(self) -> None:
        """Check every required input port of a non-source actor is wired."""
        wired = {(dst, port) for targets in self.channels.values()
                 for dst, port in targets}
        for actor in self.actors.values():
            for p in actor.in_ports:
                if p.required and (actor.name, p.name) not in wired:
                    raise ValueError(
                        f"{actor.name}.{p.name} is required but unconnected"
                    )
