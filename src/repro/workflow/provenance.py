"""Provenance tracking (§9: "track the provenance of the data and the
workflow in real time ... find the original data sets contributing to a
particular image").

Tokens carry their derivation chain; the store indexes finished
artifacts so lineage queries ("which restart files fed morph 3?") are
answered by walking the recorded graph.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class ProvenanceRecord:
    artifact: str
    activity: str
    inputs: tuple


class ProvenanceStore:
    """Append-only provenance graph over artifact names."""

    def __init__(self):
        self.records: list = []
        self._by_artifact: dict = defaultdict(list)

    def record(self, artifact: str, activity: str, inputs=()) -> None:
        rec = ProvenanceRecord(str(artifact), str(activity), tuple(inputs))
        self.records.append(rec)
        self._by_artifact[rec.artifact].append(rec)

    def record_token(self, artifact: str, token) -> None:
        """Record a token's derivation chain as this artifact's history."""
        acts = [a for a, _ in token.provenance]
        self.record(artifact, acts[-1] if acts else "source",
                    inputs=tuple(str(u) for _, u in token.provenance))

    def ancestors(self, artifact: str) -> set:
        """All artifacts reachable backwards from ``artifact``."""
        out: set = set()
        frontier = [artifact]
        while frontier:
            a = frontier.pop()
            for rec in self._by_artifact.get(a, ()):
                for src in rec.inputs:
                    if src not in out:
                        out.add(src)
                        frontier.append(src)
        return out

    def activities_of(self, artifact: str) -> list:
        return [rec.activity for rec in self._by_artifact.get(artifact, ())]

    def __len__(self) -> int:
        return len(self.records)
