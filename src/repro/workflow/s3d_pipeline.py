"""The Fig 16 S3D monitoring workflow: three parallel pipelines.

1. **restart/analysis** — watch jaguar for completed restart
   directories, move them to ewok (multi-stream ssh), morph N files to
   M, then archive to HPSS and ship to Sandia for post-run analysis.
2. **netCDF** — watch for analysis files (produced more often than
   restarts), transfer, convert, and render images for the dashboard,
   plus forward to the UC Davis visualization partners.
3. **min/max logs** — move the ASCII monitoring files and parse them
   into the dashboard's time traces (Fig 17).

The workflow stays isolated from the simulation: it only ever *reads*
what S3D wrote (via FileWatcher + the completion log), so workflow
failures never touch the running job — the paper's key fault-tolerance
requirement for simulations costing millions of CPU hours.
"""

from __future__ import annotations

import numpy as np

from repro.workflow.actors import (
    Archive,
    Collector,
    FileWatcher,
    MinMaxParser,
    Morph,
    PlotImages,
    ProcessFile,
    Transfer,
)
from repro.workflow.director import ProcessNetworkDirector
from repro.workflow.environment import Environment
from repro.workflow.graph import Workflow

MACHINES = ("jaguar", "ewok", "hpss", "sandia", "ucdavis")


def make_environment() -> Environment:
    """The §9 machine fleet with the ewok-side commands registered."""
    env = Environment(link_bandwidth=100e6, link_latency=0.05)
    for name in MACHINES:
        env.add_machine(name)

    def convert_netcdf(machine, path, out_path):
        data = machine.read(path)
        machine.write(out_path, b"NCCONV" + data)

    env["ewok"].register("convert", convert_netcdf)
    return env


def simulate_s3d_run(env: Environment, n_checkpoints: int = 4,
                     netcdf_per_checkpoint: int = 2, restart_files_per_dir: int = 2,
                     payload: int = 4096, monitor_rows=None, seed: int = 0) -> dict:
    """Write the files a (scaled) S3D production run produces on jaguar.

    Restart directories appear roughly hourly, netCDF analysis files
    more often, and the ASCII min/max log continuously; the completion
    log gets a COMPLETE entry only when a file is fully written.
    Returns a manifest of what was created.
    """
    rng = np.random.default_rng(seed)
    jaguar = env["jaguar"]
    manifest = {"restart": [], "netcdf": [], "minmax": []}
    log_lines = []
    for cid in range(n_checkpoints):
        for k in range(restart_files_per_dir):
            path = f"restart/{cid:04d}/part{k}.dat"
            jaguar.write(path, rng.bytes(payload))
            log_lines.append(f"COMPLETE {path}")
            manifest["restart"].append(path)
        for k in range(netcdf_per_checkpoint):
            path = f"netcdf/{cid:04d}_{k}.nc"
            jaguar.write(path, rng.bytes(payload // 4))
            log_lines.append(f"COMPLETE {path}")
            manifest["netcdf"].append(path)
        rows = monitor_rows or [
            (cid * 100, "T", 300.0 + cid, 1500.0 + 10 * cid),
            (cid * 100, "rho", 0.1, 1.2),
        ]
        text = "\n".join(
            f"{step} {var} {lo} {hi}" for step, var, lo, hi in rows
        )
        path = f"minmax/{cid:04d}.txt"
        jaguar.write(path, text.encode())
        log_lines.append(f"COMPLETE {path}")
        manifest["minmax"].append(path)
    jaguar.write("s3d.log", "\n".join(log_lines).encode())
    return manifest


def build_s3d_workflow(env: Environment, checkpoints: dict | None = None):
    """Assemble the three-pipeline workflow (Fig 16).

    ``checkpoints`` is the persistent checkpoint store shared across
    workflow restarts: pass the same dict to a rebuilt workflow and
    completed ProcessFile/Transfer work is skipped.

    Returns (workflow, taps) where taps holds the Collector sinks.
    """
    ck = checkpoints if checkpoints is not None else {}
    wf = Workflow("s3d-monitoring")

    # pipeline 1: restart/analysis
    wf.add(FileWatcher("watch_restart", env, "jaguar", "restart/",
                       completion_log="s3d.log"))
    wf.add(Transfer("move_restart", env, "jaguar", "ewok", streams=4,
                    checkpoint_store=ck.setdefault("move_restart", {})))
    wf.add(Morph("morph", env, "ewok", group_size=2))
    wf.add(Archive("archive", env, src="ewok", archive_machine="hpss"))
    wf.add(Transfer("to_sandia", env, "ewok", "sandia", streams=2,
                    checkpoint_store=ck.setdefault("to_sandia", {})))
    wf.add(Collector("restart_done"))
    wf.connect("watch_restart", "file", "move_restart", "file")
    wf.connect("move_restart", "file", "morph", "file")
    wf.connect("morph", "file", "archive", "file")
    wf.connect("archive", "file", "to_sandia", "file")
    wf.connect("to_sandia", "file", "restart_done", "in")

    # pipeline 2: netCDF transformation + imaging
    wf.add(FileWatcher("watch_netcdf", env, "jaguar", "netcdf/",
                       completion_log="s3d.log"))
    wf.add(Transfer("move_netcdf", env, "jaguar", "ewok", streams=2,
                    checkpoint_store=ck.setdefault("move_netcdf", {})))
    wf.add(ProcessFile("convert", env, "ewok", "convert",
                       checkpoint_store=ck.setdefault("convert", {}),
                       transform_path=lambda p: p + ".conv"))
    wf.add(PlotImages("plot", env, "ewok"))
    wf.add(Transfer("to_ucdavis", env, "ewok", "ucdavis", streams=2,
                    checkpoint_store=ck.setdefault("to_ucdavis", {})))
    wf.add(Collector("images"))
    wf.add(Collector("conversion_errors"))
    wf.connect("watch_netcdf", "file", "move_netcdf", "file")
    wf.connect("move_netcdf", "file", "convert", "file")
    wf.connect("convert", "file", "plot", "file")
    wf.connect("convert", "file", "to_ucdavis", "file")
    wf.connect("convert", "errors", "conversion_errors", "in")
    wf.connect("plot", "image", "images", "in")

    # pipeline 3: min/max monitoring
    wf.add(FileWatcher("watch_minmax", env, "jaguar", "minmax/",
                       completion_log="s3d.log"))
    wf.add(Transfer("move_minmax", env, "jaguar", "ewok", streams=1,
                    checkpoint_store=ck.setdefault("move_minmax", {})))
    wf.add(MinMaxParser("parse_minmax", env, "ewok"))
    wf.add(Collector("dashboard_series"))
    wf.connect("watch_minmax", "file", "move_minmax", "file")
    wf.connect("move_minmax", "file", "parse_minmax", "file")
    wf.connect("parse_minmax", "series", "dashboard_series", "in")

    taps = {
        "restart_done": wf.actors["restart_done"],
        "images": wf.actors["images"],
        "dashboard_series": wf.actors["dashboard_series"],
        "conversion_errors": wf.actors["conversion_errors"],
    }
    return wf, taps


def run_s3d_workflow(env, checkpoints=None, rounds: int | None = None):
    """Convenience: build + run; returns (workflow, taps, director)."""
    wf, taps = build_s3d_workflow(env, checkpoints)
    director = ProcessNetworkDirector(wf)
    director.run(rounds=rounds)
    return wf, taps, director
