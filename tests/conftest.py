"""Shared fixtures: mechanisms are session-scoped (construction is cheap
but reused hundreds of times)."""

import numpy as np
import pytest

from repro.chemistry import h2_li2004, ch4_onestep, ch4_twostep
from repro.chemistry.mechanisms import air


@pytest.fixture(scope="session")
def h2_mech():
    return h2_li2004()


@pytest.fixture(scope="session")
def air_mech():
    return air()


@pytest.fixture(scope="session")
def ch4_mech():
    return ch4_twostep()


@pytest.fixture(scope="session")
def ch4_1s_mech():
    return ch4_onestep()


@pytest.fixture(scope="session")
def h2_air_stoich(h2_mech):
    """Stoichiometric H2/air mass fractions."""
    X = np.zeros(h2_mech.n_species)
    X[h2_mech.index("H2")] = 0.296
    X[h2_mech.index("O2")] = 0.148
    X[h2_mech.index("N2")] = 0.556
    return h2_mech.mole_to_mass(X)


@pytest.fixture(scope="session")
def air_y(air_mech):
    return air_mech.mass_fractions_from({"O2": 0.233, "N2": 0.767})
