"""Shared fixtures: mechanisms are session-scoped (construction is cheap
but reused hundreds of times); NumPy's RNG is seeded per-test.

Every test runs with ``np.random`` seeded from a CRC32 of its node id,
so stochastic tests are reproducible in isolation: rerunning a single
failing test re-derives the same seed, no ``-p no:randomly``-style
machinery needed. The seed is recorded as a ``numpy-seed`` user
property (visible in junit XML) and echoed in the failure report.
Tests that want a modern generator use the ``rng`` fixture, which is
seeded the same way.
"""

import zlib

import numpy as np
import pytest

from repro.chemistry import h2_li2004, ch4_onestep, ch4_twostep
from repro.chemistry.mechanisms import air


def _node_seed(request) -> int:
    return zlib.crc32(request.node.nodeid.encode())


@pytest.fixture(autouse=True)
def _seed_numpy_rng(request):
    """Seed the legacy global NumPy RNG deterministically per-test."""
    seed = _node_seed(request)
    np.random.seed(seed)
    request.node.user_properties.append(("numpy-seed", seed))
    yield


@pytest.fixture
def rng(request):
    """A per-test `numpy.random.Generator` with a reported seed."""
    return np.random.default_rng(_node_seed(request))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    rep = outcome.get_result()
    if rep.when == "call" and rep.failed:
        for name, value in item.user_properties:
            if name == "numpy-seed":
                rep.sections.append((
                    "numpy seed",
                    f"np.random seeded with {value} "
                    "(crc32 of the test node id — stable across runs)",
                ))


@pytest.fixture(scope="session")
def h2_mech():
    return h2_li2004()


@pytest.fixture(scope="session")
def air_mech():
    return air()


@pytest.fixture(scope="session")
def ch4_mech():
    return ch4_twostep()


@pytest.fixture(scope="session")
def ch4_1s_mech():
    return ch4_onestep()


@pytest.fixture(scope="session")
def h2_air_stoich(h2_mech):
    """Stoichiometric H2/air mass fractions."""
    X = np.zeros(h2_mech.n_species)
    X[h2_mech.index("H2")] = 0.296
    X[h2_mech.index("O2")] = 0.148
    X[h2_mech.index("N2")] = 0.556
    return h2_mech.mole_to_mass(X)


@pytest.fixture(scope="session")
def air_y(air_mech):
    return air_mech.mass_fractions_from({"O2": 0.233, "N2": 0.767})
