"""Tests for the analysis substrate: mixture fraction, progress
variable, conditional statistics, flame geometry."""

import numpy as np
import pytest

from repro.analysis import (
    bilger_mixture_fraction,
    conditional_mean,
    count_flame_pieces,
    flame_contours,
    gradient_magnitude,
    liftoff_height,
    progress_variable,
    scatter_sample,
    stoichiometric_mixture_fraction,
    surface_length,
)
from repro.core import Grid


@pytest.fixture(scope="module")
def streams(h2_mech_mod):
    mech = h2_mech_mod
    X = np.zeros(mech.n_species)
    X[mech.index("H2")] = 0.65
    X[mech.index("N2")] = 0.35
    y_fuel = mech.mole_to_mass(X)
    y_ox = np.zeros(mech.n_species)
    y_ox[mech.index("O2")] = 0.233
    y_ox[mech.index("N2")] = 0.767
    return y_fuel, y_ox


@pytest.fixture(scope="module")
def h2_mech_mod():
    from repro.chemistry import h2_li2004

    return h2_li2004()


class TestMixtureFraction:
    def test_pure_streams(self, h2_mech_mod, streams):
        y_fuel, y_ox = streams
        Y = np.stack([y_fuel, y_ox], axis=1)
        z = bilger_mixture_fraction(h2_mech_mod, Y, y_fuel, y_ox)
        assert z[0] == pytest.approx(1.0, abs=1e-12)
        assert z[1] == pytest.approx(0.0, abs=1e-12)

    def test_linear_in_mixing(self, h2_mech_mod, streams):
        y_fuel, y_ox = streams
        fracs = np.linspace(0, 1, 7)
        Y = np.stack([f * y_fuel + (1 - f) * y_ox for f in fracs], axis=1)
        z = bilger_mixture_fraction(h2_mech_mod, Y, y_fuel, y_ox)
        np.testing.assert_allclose(z, fracs, atol=1e-12)

    def test_conserved_under_reaction(self, h2_mech_mod, streams):
        """Burning a mixture (moving O/H atoms to H2O) leaves Z unchanged."""
        y_fuel, y_ox = streams
        mech = h2_mech_mod
        y_mix = 0.3 * y_fuel + 0.7 * y_ox
        from repro.chemistry import ConstPressureReactor
        from repro.util.constants import P_ATM

        _, _, Y = ConstPressureReactor(mech, P_ATM).integrate(
            1300.0, y_mix, 1e-3, n_out=10
        )
        z = bilger_mixture_fraction(mech, Y, y_fuel, y_ox)
        np.testing.assert_allclose(z, z[0], atol=1e-6)

    def test_stoichiometric_value_h2_air(self, h2_mech_mod, streams):
        """Z_st for the paper's 65/35 H2/N2 jet vs air is ~0.16."""
        y_fuel, y_ox = streams
        z_st = stoichiometric_mixture_fraction(h2_mech_mod, y_fuel, y_ox)
        assert 0.1 < z_st < 0.25

    def test_equal_streams_rejected(self, h2_mech_mod, streams):
        y_fuel, _ = streams
        Y = y_fuel[:, None]
        with pytest.raises(ValueError):
            bilger_mixture_fraction(h2_mech_mod, Y, y_fuel, y_fuel)


class TestProgressVariable:
    def test_endpoints(self, h2_mech_mod):
        mech = h2_mech_mod
        Y = np.zeros((mech.n_species, 2))
        Y[mech.index("O2"), 0] = 0.22
        Y[mech.index("O2"), 1] = 0.05
        Y[mech.index("N2")] = 1.0 - Y[mech.index("O2")]
        c = progress_variable(mech, Y, y_o2_unburned=0.22, y_o2_burned=0.05)
        assert c[0] == pytest.approx(0.0)
        assert c[1] == pytest.approx(1.0)

    def test_clipped(self, h2_mech_mod):
        mech = h2_mech_mod
        Y = np.zeros((mech.n_species, 1))
        Y[mech.index("O2")] = 0.30  # above unburned level
        c = progress_variable(mech, Y, 0.22, 0.05)
        assert c[0] == 0.0

    def test_equal_levels_rejected(self, h2_mech_mod):
        with pytest.raises(ValueError):
            progress_variable(h2_mech_mod, np.zeros((9, 1)), 0.2, 0.2)

    def test_gradient_magnitude(self):
        grid = Grid((64, 48), (1.0, 2.0), periodic=(True, True))
        xx, yy = grid.meshgrid()
        f = np.sin(2 * np.pi * xx) * np.cos(np.pi * yy)
        g = gradient_magnitude(f, grid)
        gx = 2 * np.pi * np.cos(2 * np.pi * xx) * np.cos(np.pi * yy)
        gy = -np.pi * np.sin(2 * np.pi * xx) * np.sin(np.pi * yy)
        np.testing.assert_allclose(g, np.sqrt(gx**2 + gy**2), atol=1e-4)


class TestConditional:
    def test_known_relationship(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 20000)
        y = 3.0 * x + rng.normal(0, 0.01, x.size)
        centers, mean, std, count = conditional_mean(x, y, bins=10)
        np.testing.assert_allclose(mean, 3.0 * centers, atol=0.02)
        # in-bin spread: slope 3 x bin width 0.1 -> std ~ 3*0.1/sqrt(12)
        assert np.all(std < 0.12)
        assert count.sum() == x.size

    def test_empty_bins_are_nan(self):
        x = np.array([0.1, 0.1, 0.9, 0.9])
        y = np.array([1.0, 1.0, 2.0, 2.0])
        centers, mean, std, count = conditional_mean(x, y, bins=5, range_=(0, 1))
        assert np.isnan(mean[2])
        assert mean[0] == pytest.approx(1.0)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            conditional_mean(np.zeros(3), np.zeros(4))

    def test_scatter_sample_bounds(self):
        x = np.arange(100.0)
        a, b = scatter_sample(x, x, n_max=10, seed=1)
        assert len(a) == 10
        np.testing.assert_array_equal(a, b)

    def test_scatter_sample_small_passthrough(self):
        x = np.arange(5.0)
        a, b = scatter_sample(x, 2 * x, n_max=10)
        np.testing.assert_array_equal(a, x)


class TestFlameGeometry:
    def _circle_field(self, n=96, r=0.3):
        grid = Grid((n, n), (1.0, 1.0), periodic=(False, False))
        xx, yy = grid.meshgrid()
        return grid, np.sqrt((xx - 0.5) ** 2 + (yy - 0.5) ** 2) - r

    def test_circle_contour_length(self):
        grid, f = self._circle_field(r=0.3)
        segs = flame_contours(f, grid, level=0.0)
        length = surface_length(segs)
        assert length == pytest.approx(2 * np.pi * 0.3, rel=0.01)

    def test_circle_is_one_piece(self):
        grid, f = self._circle_field()
        segs = flame_contours(f, grid, level=0.0)
        assert count_flame_pieces(segs) == 1

    def test_two_circles_two_pieces(self):
        grid = Grid((128, 64), (2.0, 1.0), periodic=(False, False))
        xx, yy = grid.meshgrid()
        f = np.minimum(
            np.sqrt((xx - 0.5) ** 2 + (yy - 0.5) ** 2) - 0.2,
            np.sqrt((xx - 1.5) ** 2 + (yy - 0.5) ** 2) - 0.2,
        )
        segs = flame_contours(f, grid, level=0.0)
        assert count_flame_pieces(segs) == 2

    def test_no_contour(self):
        grid, f = self._circle_field()
        segs = flame_contours(f, grid, level=10.0)
        assert len(segs) == 0
        assert surface_length(segs) == 0.0
        assert count_flame_pieces(segs) == 0

    def test_wrinkled_longer_than_flat(self):
        """More wrinkling -> more flame surface (the Fig 12 metric)."""
        grid = Grid((128, 128), (1.0, 1.0), periodic=(False, False))
        xx, yy = grid.meshgrid()
        flat = yy - 0.5
        wavy = yy - 0.5 - 0.08 * np.sin(6 * np.pi * xx)
        l_flat = surface_length(flame_contours(flat, grid, 0.0))
        l_wavy = surface_length(flame_contours(wavy, grid, 0.0))
        assert l_wavy > 1.1 * l_flat

    def test_requires_2d(self):
        grid = Grid((32,), (1.0,))
        with pytest.raises(ValueError):
            flame_contours(np.zeros(32), grid, 0.0)

    def test_liftoff_height(self):
        grid = Grid((50, 20), (1.0, 0.4), periodic=(False, False))
        xx, _ = grid.meshgrid()
        oh = np.where(xx > 0.42, 1e-3, 0.0)
        h = liftoff_height(oh, grid, threshold=1e-4, axis=0)
        assert h == pytest.approx(grid.coords[0][np.searchsorted(grid.coords[0], 0.42)])

    def test_liftoff_nan_when_absent(self):
        grid = Grid((20, 20), (1.0, 1.0), periodic=(False, False))
        assert np.isnan(liftoff_height(np.zeros((20, 20)), grid, 0.5))
