"""Array-backend layer: registry and selection plumbing, importability
gating, workspace arena tagging, pack builders, xp-generic kernel
conformance, and the tolerance battery for non-reference backends
(skip-with-reason where the optional package is absent)."""

import numpy as np
import pytest

import repro.backend as B
from repro.backend import (
    ArrayBackend,
    BackendUnavailable,
    backend_skip_reason,
    resolve_backend,
    validate_backend_name,
)
from repro.backend import packs as P
from repro.chemistry import ch4_twostep, h2_li2004
from repro.chemistry.mechanisms import ch4_jl4
from repro.core.config import SolverConfig, periodic_boundaries
from repro.core.derivatives import DerivativeOperator
from repro.core.filters import FilterOperator
from repro.core.grid import Grid
from repro.core.rhs import CompressibleRHS
from repro.core.state import State
from repro.core.workspace import Workspace
from repro.transport import MixtureAveragedTransport

OPTIONAL_BACKENDS = ("numba", "torch")


class _TaggedBackend(ArrayBackend):
    """Host-reference behavior under a different registry name; used to
    exercise arena tagging and the naive-engine guard without needing
    numba or torch installed."""

    name = "tagged-test"
    is_reference = False


def _make_state(mech, grid, seed=3):
    rng = np.random.default_rng(seed)
    S = grid.shape
    T = 1100.0 + 300.0 * rng.random(S)
    rho = 0.4 + 0.2 * rng.random(S)
    vel = [30.0 * (rng.random(S) - 0.5) for _ in range(grid.ndim)]
    Y = rng.random((mech.n_species,) + S) + 0.05
    Y /= Y.sum(axis=0)
    return State.from_primitive(mech, grid, rho, vel, T, Y)


def _periodic(*shape_dx):
    shape, dx = zip(*shape_dx)
    return Grid(shape, dx, periodic=(True,) * len(shape))


class TestRegistryAndSelection:
    def test_all_backends_registered(self):
        assert set(B.BACKEND_NAMES) >= {"numpy", "numba", "torch"}

    def test_default_is_numpy_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_RHS_BACKEND", raising=False)
        be = resolve_backend()
        assert be.name == "numpy"
        assert be.is_reference

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_RHS_BACKEND", "numpy")
        assert resolve_backend().name == "numpy"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RHS_BACKEND", "not-a-backend")
        assert resolve_backend("numpy").name == "numpy"

    def test_explicit_instance_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_RHS_BACKEND", "not-a-backend")
        inst = _TaggedBackend()
        assert resolve_backend(inst) is inst

    def test_instances_are_cached_per_name(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(ValueError) as exc:
            validate_backend_name("not-a-backend")
        msg = str(exc.value)
        for name in ("numpy", "numba", "torch"):
            assert name in msg

    def test_env_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_RHS_BACKEND", "not-a-backend")
        with pytest.raises(ValueError):
            resolve_backend()

    @pytest.mark.parametrize("name", OPTIONAL_BACKENDS)
    def test_optional_backend_gating(self, name):
        """Unavailable optional backends raise naming the missing
        package; available ones resolve to a working instance."""
        reason = backend_skip_reason(name)
        if reason is None:
            assert resolve_backend(name).name == name
        else:
            assert name in reason  # names the missing package
            with pytest.raises(BackendUnavailable) as exc:
                resolve_backend(name)
            assert exc.value.backend == name
            assert exc.value.missing == name
            assert name in str(exc.value)

    @pytest.mark.parametrize("name", OPTIONAL_BACKENDS)
    def test_config_validates_name_without_package(self, name):
        """Config validation must pass on machines without the package."""
        grid = _periodic((16, 0.01))
        cfg = SolverConfig(boundaries=periodic_boundaries(1), rhs_backend=name)
        cfg.validate(grid)

    def test_config_rejects_unknown_backend(self):
        grid = _periodic((16, 0.01))
        cfg = SolverConfig(boundaries=periodic_boundaries(1),
                           rhs_backend="not-a-backend")
        with pytest.raises(ValueError, match="registered backends"):
            cfg.validate(grid)

    def test_naive_engine_rejects_non_reference_backend(self):
        mech = h2_li2004()
        st = _make_state(mech, _periodic((16, 0.01)))
        with pytest.raises(ValueError, match="batched engine"):
            CompressibleRHS(st, reacting=True, engine="naive",
                            backend=_TaggedBackend())

    def test_rhs_publishes_backend_gauge(self):
        from repro.telemetry import Telemetry

        mech = h2_li2004()
        st = _make_state(mech, _periodic((16, 0.01)))
        tel = Telemetry()
        rhs = CompressibleRHS(st, reacting=True, telemetry=tel,
                              backend="numpy")
        assert rhs.backend.name == "numpy"
        assert tel.gauge("rhs.backend.numpy").value == 1.0


class TestWorkspaceTagging:
    """Arena keys carry backend and dtype tags: switching backends (or
    dtypes) can never hand out an aliased buffer."""

    def test_backend_switch_never_aliases(self):
        ws = Workspace()
        a = ws.array("slot", (8, 3))
        a.fill(7.0)
        ws.bind(_TaggedBackend())
        b = ws.array("slot", (8, 3))
        assert b is not a
        assert not np.may_share_memory(a, b)
        b.fill(1.0)
        assert np.all(a == 7.0)
        # rebinding the original backend returns the original buffer
        ws.bind(None)
        assert ws.array("slot", (8, 3)) is a

    def test_rebind_returns_same_buffer(self):
        ws = Workspace(backend=resolve_backend("numpy"))
        a = ws.array("slot", (4,))
        ws.bind(resolve_backend("numpy"))
        assert ws.array("slot", (4,)) is a

    def test_dtype_tag_keeps_both_buffers(self):
        ws = Workspace()
        a64 = ws.array("slot", (6,), dtype=np.float64)
        a32 = ws.array("slot", (6,), dtype=np.float32)
        assert a64.dtype == np.float64 and a32.dtype == np.float32
        assert not np.may_share_memory(a64, a32)
        # re-requesting either dtype returns its own slot (no rekey churn)
        assert ws.array("slot", (6,), dtype=np.float64) is a64
        assert ws.array("slot", (6,), dtype=np.float32) is a32

    def test_nbytes_counts_all_tagged_slots(self):
        ws = Workspace()
        ws.array("slot", (10,))
        ws.bind(_TaggedBackend())
        ws.array("slot", (10,))
        assert ws.nbytes == 2 * 10 * 8
        ws.clear()
        assert ws.nbytes == 0 and len(ws) == 0


class TestNumpyBackendBitwise:
    """Explicitly selecting the numpy backend changes no bits vs the
    default construction path."""

    @pytest.mark.parametrize("reacting", [True, False])
    def test_rhs_bit_identical(self, monkeypatch, reacting):
        monkeypatch.delenv("REPRO_RHS_BACKEND", raising=False)
        mech = h2_li2004()
        grid = _periodic((12, 0.01), (10, 0.008))
        st_a = _make_state(mech, grid)
        st_b = State(mech, grid, st_a.u.copy())
        if st_a._t_cache is not None:
            st_b._t_cache = st_a._t_cache.copy()
        tr_a = MixtureAveragedTransport(mech)
        tr_b = MixtureAveragedTransport(mech)
        rhs_a = CompressibleRHS(st_a, transport=tr_a, reacting=reacting)
        rhs_b = CompressibleRHS(st_b, transport=tr_b, reacting=reacting,
                                backend="numpy")
        assert np.array_equal(rhs_a(0.0, st_a.u), rhs_b(0.0, st_b.u))

    def test_operators_reference_path_with_numpy_backend(self):
        rng = np.random.default_rng(5)
        f = rng.standard_normal((24, 7))
        be = resolve_backend("numpy")
        for periodic in (True, False):
            d_ref = DerivativeOperator(24, 0.01, periodic=periodic).apply(f)
            d_be = DerivativeOperator(24, 0.01, periodic=periodic,
                                      backend=be).apply(f)
            assert np.array_equal(d_ref, d_be)
            g_ref = FilterOperator(24, periodic=periodic, alpha=0.5).apply(f)
            g_be = FilterOperator(24, periodic=periodic, alpha=0.5,
                                  backend=be).apply(f)
            assert np.array_equal(g_ref, g_be)


class TestPacks:
    """The flattened mechanism packs mirror the evaluator's internals and
    the xp-generic kernels reproduce the reference bit for bit with
    ``xp = numpy`` (the same math the JIT/tensor backends execute)."""

    MECHS = [("h2", h2_li2004), ("ch4_jl4", ch4_jl4), ("ch4_2s", ch4_twostep)]

    @pytest.mark.parametrize("name,builder", MECHS, ids=[m[0] for m in MECHS])
    def test_kinetics_pack_mirrors_mechanism(self, name, builder):
        mech = builder()
        pack = P.KineticsPack.from_mechanism(mech)
        kin = mech.kinetics
        assert pack.ns == mech.n_species
        assert pack.nr == mech.n_reactions
        np.testing.assert_array_equal(pack.weights, mech.weights)
        np.testing.assert_array_equal(pack.delta_nu, kin._delta_nu)
        for j, rxn in enumerate(kin.reactions):
            assert pack.A[j] == rxn.rate.A
            assert pack.b[j] == rxn.rate.n
            assert pack.Ea[j] == rxn.rate.Ea
            assert bool(pack.reversible[j]) == bool(rxn.reversible)

    @pytest.mark.parametrize("name,builder", MECHS, ids=[m[0] for m in MECHS])
    def test_production_rates_xp_numpy_bitwise(self, name, builder):
        mech = builder()
        rng = np.random.default_rng(11)
        S = (6, 5)
        T = rng.uniform(350.0, 2800.0, S)
        Y = rng.random((mech.n_species,) + S) + 0.02
        Y /= Y.sum(axis=0)
        rho = rng.uniform(0.1, 2.0, S)
        pack = P.KineticsPack.from_mechanism(mech)
        ref = mech.production_rates(rho, T, Y)
        got = P.mass_production_rates_xp(np, pack, rho, T, Y)
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("name,builder", MECHS, ids=[m[0] for m in MECHS])
    def test_newton_xp_numpy_bitwise(self, name, builder):
        mech = builder()
        rng = np.random.default_rng(13)
        S = (7, 4)
        T_true = rng.uniform(400.0, 2500.0, S)
        Y = rng.random((mech.n_species,) + S) + 0.02
        Y /= Y.sum(axis=0)
        e = mech.int_energy_mass(T_true, Y)
        tp = P.ThermoPack.from_table(mech.thermo)
        ref = mech.temperature_from_energy(e, Y)
        got = P.newton_temperature_from_energy(np, tp, mech.weights, e, Y)
        assert np.array_equal(ref, got)

    def test_nasa7_xp_numpy_bitwise(self):
        mech = h2_li2004()
        rng = np.random.default_rng(17)
        T = rng.uniform(250.0, 3200.0, (40,))
        tp = P.ThermoPack.from_table(mech.thermo)
        assert np.array_equal(mech.thermo.enthalpy_molar(T),
                              P.nasa7_enthalpy(np, tp, T))
        h, cp = P.nasa7_enthalpy_cp(np, tp, T)
        assert np.array_equal(mech.thermo.enthalpy_molar(T), h)
        assert np.array_equal(mech.thermo.cp_molar(T), cp)
        assert np.array_equal(mech.thermo.gibbs_over_rt(T),
                              P.nasa7_gibbs_over_rt(np, tp, T))


# ----------------------------------------------------------------------
# tolerance conformance battery for the optional accelerated backends
# ----------------------------------------------------------------------

RTOL = 1e-12


def _skip_unless_available(name):
    reason = backend_skip_reason(name)
    if reason is not None:
        pytest.skip(reason)
    return resolve_backend(name)


def _assert_close(ref, got, rtol=RTOL):
    """Relative tolerance scaled per leading field (du rows span ~10
    orders of magnitude between density and energy)."""
    ref = np.asarray(ref)
    got = np.asarray(got)
    assert ref.shape == got.shape
    r2 = ref.reshape(len(ref), -1) if ref.ndim > 1 else ref.reshape(1, -1)
    g2 = got.reshape(len(got), -1) if got.ndim > 1 else got.reshape(1, -1)
    for k in range(len(r2)):
        scale = np.max(np.abs(r2[k]))
        if scale == 0.0:
            assert np.all(g2[k] == 0.0)
        else:
            assert np.max(np.abs(g2[k] - r2[k])) <= rtol * scale


@pytest.mark.parametrize("name", OPTIONAL_BACKENDS)
class TestAcceleratedConformance:
    def test_derivative_sweeps(self, name):
        be = _skip_unless_available(name)
        rng = np.random.default_rng(23)
        metric = 1.0 / (0.01 * (1.0 + 0.3 * rng.random(32)))
        for periodic in (True, False):
            for spacing in (0.01, metric):
                ref_op = DerivativeOperator(32, spacing, periodic=periodic)
                be_op = DerivativeOperator(32, spacing, periodic=periodic,
                                           backend=be)
                f = rng.standard_normal((5, 32, 6))
                ref = ref_op.apply(f, axis=1)
                got = be_op.apply(f, axis=1)
                _assert_close(ref, got)

    def test_filter_sweeps(self, name):
        be = _skip_unless_available(name)
        rng = np.random.default_rng(29)
        for periodic in (True, False):
            ref_op = FilterOperator(24, periodic=periodic, alpha=0.7)
            be_op = FilterOperator(24, periodic=periodic, alpha=0.7,
                                   backend=be)
            f = rng.standard_normal((24, 9))
            _assert_close(ref_op.apply(f), be_op.apply(f))
            # documented in-place (out aliases f) usage
            a_ref, a_be = f.copy(), f.copy()
            ref_op.apply(a_ref, out=a_ref)
            be_op.apply(a_be, out=a_be)
            _assert_close(a_ref, a_be)

    def test_newton_hook(self, name):
        be = _skip_unless_available(name)
        mech = h2_li2004()
        rng = np.random.default_rng(31)
        S = (11, 5)
        T_true = rng.uniform(400.0, 2600.0, S)
        Y = rng.random((mech.n_species,) + S) + 0.02
        Y /= Y.sum(axis=0)
        e = mech.int_energy_mass(T_true, Y)
        ref = mech.temperature_from_energy(e, Y)
        got = be.temperature_from_energy(mech, e, Y)
        _assert_close(ref, got)

    @pytest.mark.parametrize("builder", [h2_li2004, ch4_jl4])
    def test_production_rates_hook(self, name, builder):
        be = _skip_unless_available(name)
        mech = builder()
        rng = np.random.default_rng(37)
        S = (8, 6)
        T = rng.uniform(500.0, 2700.0, S)
        Y = rng.random((mech.n_species,) + S) + 0.02
        Y /= Y.sum(axis=0)
        rho = rng.uniform(0.2, 1.5, S)
        ref = mech.production_rates(rho, T, Y)
        got = be.production_rates(mech, rho, T, Y)
        _assert_close(ref, got, rtol=1e-11)

    def test_full_rhs_vs_reference(self, name):
        be = _skip_unless_available(name)
        mech = h2_li2004()
        grid = _periodic((12, 0.01), (10, 0.008), (8, 0.01))
        st_ref = _make_state(mech, grid)
        st_be = State(mech, grid, st_ref.u.copy())
        if st_ref._t_cache is not None:
            st_be._t_cache = st_ref._t_cache.copy()
        rhs_ref = CompressibleRHS(st_ref, transport=MixtureAveragedTransport(mech),
                                  reacting=True, backend="numpy")
        rhs_be = CompressibleRHS(st_be, transport=MixtureAveragedTransport(mech),
                                 reacting=True, backend=be)
        du_ref = rhs_ref(0.0, st_ref.u)
        du_be = rhs_be(0.0, st_be.u)
        _assert_close(du_ref, du_be, rtol=1e-10)
        # warm re-evaluation through the arena stays within tolerance
        out = np.empty_like(du_be)
        rhs_be(0.0, st_be.u, out=out)
        _assert_close(du_ref, out, rtol=1e-10)

    def test_compile_telemetry_counters(self, name):
        be = _skip_unless_available(name)
        mech = h2_li2004()
        st = _make_state(mech, _periodic((16, 0.01)))
        rhs = CompressibleRHS(st, reacting=True, backend=be)
        rhs(0.0, st.u)
        # JIT backends report compile effort; tensor backends may be 0
        assert be.compile_count >= 0
        assert be.compile_seconds >= 0.0
