"""Chemistry dynamic load balancing: invariants, bit-exactness, faults.

The load balancer's correctness contract has three layers, each tested
here:

1. **Planning invariants** (property-based): for any cost profile and
   policy, the cell assignment is a *partition* — every cell appears
   exactly once, either retained by its owner or in exactly one
   shipment — total load is conserved, and planning is deterministic.
2. **Bit-exactness**: production rates and solver conserved state are
   bitwise identical across ``off``/``greedy``/``pairwise-diffusion``,
   including under injected shipping faults (the local-evaluation
   fallback is exact by kinetics shape independence).
3. **Effectiveness**: on a skewed flame-front profile the planner
   actually reduces the modeled max-rank load.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SolverConfig
from repro.core.grid import Grid
from repro.core.state import State
from repro.parallel import CartesianDecomposition, SimMPI
from repro.parallel.chemlb import (
    POLICIES,
    CellCostModel,
    ChemistryLoadBalancer,
    plan_assignment,
    plan_moves_greedy,
    plan_moves_pairwise,
    resolve_policy,
)
from repro.parallel.solver import ParallelPeriodicSolver
from repro.resilience.faults import FaultInjector
from repro.telemetry import Telemetry

pytestmark = pytest.mark.chemlb

BALANCED = ("greedy", "pairwise-diffusion")


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
def cost_profiles():
    """Per-rank cost arrays: 2-6 ranks, 1-40 cells each, costs in (0, 10]."""
    cost = st.floats(min_value=0.01, max_value=10.0,
                     allow_nan=False, allow_infinity=False)
    rank_costs = st.lists(cost, min_size=1, max_size=40)
    return st.lists(rank_costs, min_size=2, max_size=6)


# ---------------------------------------------------------------------------
# planning invariants (property-based)
# ---------------------------------------------------------------------------
class TestPlanInvariants:
    @settings(max_examples=150, deadline=None)
    @given(costs=cost_profiles(), policy=st.sampled_from(POLICIES),
           threshold=st.floats(min_value=1.0, max_value=2.0))
    def test_partition_is_permutation(self, costs, policy, threshold):
        plan = plan_assignment(costs, policy=policy, threshold=threshold)
        shipped = {r: [] for r in range(len(costs))}
        for sh in plan.shipments:
            assert 0 <= sh.src < len(costs)
            assert 0 <= sh.dst < len(costs)
            assert sh.src != sh.dst
            shipped[sh.src].append(sh.indices)
        for r, c in enumerate(costs):
            owned = np.concatenate([plan.retained[r]] + shipped[r]) \
                if shipped[r] else plan.retained[r]
            # every cell exactly once: sorted assignment == arange
            assert np.array_equal(np.sort(owned), np.arange(len(c))), (
                f"rank {r}: assignment {np.sort(owned)} is not a "
                f"permutation of arange({len(c)})"
            )

    @settings(max_examples=150, deadline=None)
    @given(costs=cost_profiles(), policy=st.sampled_from(POLICIES))
    def test_total_load_conserved(self, costs, policy):
        plan = plan_assignment(costs, policy=policy)
        assert plan.loads_after.sum() == pytest.approx(
            plan.loads_before.sum(), rel=1e-12
        )
        assert plan.loads_before.sum() == pytest.approx(
            sum(sum(c) for c in costs), rel=1e-12
        )

    @settings(max_examples=60, deadline=None)
    @given(costs=cost_profiles(), policy=st.sampled_from(POLICIES),
           threshold=st.floats(min_value=1.0, max_value=2.0))
    def test_planning_is_deterministic(self, costs, policy, threshold):
        a = plan_assignment(costs, policy=policy, threshold=threshold)
        b = plan_assignment(costs, policy=policy, threshold=threshold)
        assert len(a.shipments) == len(b.shipments)
        for sa, sb in zip(a.shipments, b.shipments):
            assert (sa.src, sa.dst) == (sb.src, sb.dst)
            assert np.array_equal(sa.indices, sb.indices)
        for ra, rb in zip(a.retained, b.retained):
            assert np.array_equal(ra, rb)

    @settings(max_examples=60, deadline=None)
    @given(costs=cost_profiles())
    def test_off_ships_nothing(self, costs):
        plan = plan_assignment(costs, policy="off")
        assert plan.shipments == []
        assert all(
            np.array_equal(r, np.arange(len(c)))
            for r, c in zip(plan.retained, costs)
        )

    def test_greedy_reduces_skewed_imbalance(self):
        loads = np.array([100.0, 10.0, 10.0, 10.0])
        moves = plan_moves_greedy(loads, threshold=1.1)
        assert moves, "skewed profile must trigger transfers"
        cur = loads.copy()
        for src, dst, amount in moves:
            cur[src] -= amount
            cur[dst] += amount
        assert cur.max() / cur.mean() < loads.max() / loads.mean()

    def test_pairwise_moves_are_nearest_neighbour(self):
        loads = np.array([100.0, 10.0, 10.0, 10.0])
        moves = plan_moves_pairwise(loads, threshold=1.1)
        assert moves
        for src, dst, _ in moves:
            assert abs(src - dst) == 1


# ---------------------------------------------------------------------------
# policy resolution and config plumbing
# ---------------------------------------------------------------------------
class TestPolicyResolution:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHEM_LB", raising=False)
        assert resolve_policy(None) == "off"

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHEM_LB", "greedy")
        assert resolve_policy(None) == "greedy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHEM_LB", "greedy")
        assert resolve_policy("pairwise-diffusion") == "pairwise-diffusion"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown chemistry LB policy"):
            resolve_policy("round-robin")

    def test_solver_config_validates_policy(self, h2_mech):
        from repro.core.config import periodic_boundaries

        grid = Grid((16, 16), (1e-3, 1e-3), periodic=(True, True))
        cfg = SolverConfig(boundaries=periodic_boundaries(2),
                           chem_load_balance="greedy")
        cfg.validate(grid)  # valid policy passes
        bad = SolverConfig(boundaries=periodic_boundaries(2),
                           chem_load_balance="fastest")
        with pytest.raises(ValueError, match="unknown chem_load_balance"):
            bad.validate(grid)

    def test_cost_model_from_telemetry(self):
        tel = Telemetry()
        with tel.span("RHS"):
            with tel.span("REACTION_RATES"):
                pass
        model = CellCostModel.from_telemetry(tel, cells_per_rank=100)
        assert model.base_cost > 0.0
        # cold cell costs base, hottest costs base * (1 + extra)
        costs = model.cell_costs(np.array([0.0, 1.0]))
        assert costs[1] == pytest.approx(
            costs[0] * (1.0 + model.reactive_extra)
        )


# ---------------------------------------------------------------------------
# balancer-level bit-exactness
# ---------------------------------------------------------------------------
def _skewed_prims(mech, rng, ranks=4, cells=24):
    """Per-rank (rho, T, Y): one flame-front rank, the rest cold."""
    ns = mech.n_species
    prims = []
    for r in range(ranks):
        T = np.full(cells, 300.0)
        if r == 1:
            T = 1400.0 + 400.0 * rng.random(cells)
        rho = 0.4 + 0.1 * rng.random(cells)
        Y = np.zeros((ns, cells))
        Y[mech.index("H2")] = 0.028
        Y[mech.index("O2")] = 0.226
        if r == 1:
            Y[mech.index("H")] = 0.002
        Y[mech.index("N2")] = 1.0 - Y.sum(axis=0)
        prims.append((rho, T, Y))
    return prims


class TestBalancerBitExactness:
    def _rates(self, h2_mech, policy, seed, injector=None, telemetry=None):
        rng = np.random.default_rng(seed)
        prims = _skewed_prims(h2_mech, rng)
        world = SimMPI(len(prims), fault_injector=injector)
        lb = ChemistryLoadBalancer(h2_mech, world, policy=policy,
                                   telemetry=telemetry)
        lb.production_rates(prims)  # warmup builds the stiffness proxy
        return lb.production_rates(prims), lb

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           policy=st.sampled_from(BALANCED))
    def test_balanced_matches_off_bitwise(self, h2_mech, seed, policy):
        off, _ = self._rates(h2_mech, "off", seed)
        bal, lb = self._rates(h2_mech, policy, seed)
        assert lb.last_plan.cells_shipped > 0, "skewed case must ship cells"
        for a, b in zip(off, bal):
            assert np.array_equal(a, b) and a.dtype == b.dtype

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           policy=st.sampled_from(BALANCED))
    def test_determinism_across_runs(self, h2_mech, seed, policy):
        a, _ = self._rates(h2_mech, policy, seed)
        b, _ = self._rates(h2_mech, policy, seed)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    @pytest.mark.parametrize("site,mode", [
        ("chemlb.ship", "drop"),
        ("chemlb.ship", "corrupt"),
        ("chemlb.reply", "drop"),
        ("chemlb.reply", "corrupt"),
        ("mpi.send", "drop"),
        ("mpi.send", "corrupt"),
    ])
    def test_faulty_shipping_falls_back_bitwise(self, h2_mech, site, mode):
        off, _ = self._rates(h2_mech, "off", seed=7)
        inj = FaultInjector(seed=11)
        inj.add(site, mode=mode, probability=1.0)
        tel = Telemetry()
        bal, lb = self._rates(h2_mech, "greedy", seed=7, injector=inj,
                              telemetry=tel)
        assert lb.last_plan.cells_shipped > 0
        # every batch was lost or corrupted, so every one fell back
        assert tel.metrics.counter("chemlb.fallbacks").value > 0
        for a, b in zip(off, bal):
            assert np.array_equal(a, b)

    def test_telemetry_instruments(self, h2_mech):
        tel = Telemetry()
        _, lb = self._rates(h2_mech, "greedy", seed=0, telemetry=tel)
        assert tel.metrics.counter("chemlb.cells_shipped").value > 0
        assert tel.metrics.counter("chemlb.batches").value > 0
        before = tel.metrics.gauge("chemlb.imbalance").value
        after = tel.metrics.gauge("chemlb.imbalance_after").value
        assert before > 1.0
        assert after < before
        assert "CHEMLB" in tel.tracer.exclusive_times()

    def test_balancing_reduces_modeled_max_load(self, h2_mech):
        _, lb = self._rates(h2_mech, "greedy", seed=0)
        plan = lb.last_plan
        assert plan.loads_after.max() < plan.loads_before.max()


# ---------------------------------------------------------------------------
# solver-level bit-exactness: the headline acceptance criterion
# ---------------------------------------------------------------------------
def _flame_front_state(mech, n=24):
    """Skewed initial condition: a hot flame front in one quadrant."""
    grid = Grid((n, n), (0.01, 0.01), periodic=(True, True))
    ns = mech.n_species
    x = np.linspace(0.0, 1.0, n, endpoint=False)
    X, _ = np.meshgrid(x, x, indexing="ij")
    front = np.exp(-(((X - 0.25) / 0.08) ** 2))
    T = 400.0 + 1400.0 * front
    Y = np.zeros((ns, n, n))
    Y[mech.index("H2")] = 0.028
    Y[mech.index("O2")] = 0.226
    Y[mech.index("H")] = 0.001 * front
    Y[mech.index("N2")] = 1.0 - Y.sum(axis=0)
    rho = mech.density(np.full((n, n), 101325.0), T, Y)
    zeros = np.zeros((n, n))
    state = State.from_primitive(mech, grid, rho, [zeros, zeros], T, Y)
    return grid, state.u


def _run_parallel(mech, grid, u0, policy, steps=3, injector=None, **kw):
    world = SimMPI(4, fault_injector=injector)
    decomp = CartesianDecomposition(grid.shape, (2, 2))
    solver = ParallelPeriodicSolver(mech, grid, decomp, world, reacting=True,
                                    chem_load_balance=policy, **kw)
    solver.set_state(u0)
    for _ in range(steps):
        solver.step(1e-8)
    return solver.gather_state(), solver


@pytest.mark.slow
class TestSolverBitExactness:
    def test_balanced_policies_match_off_bitwise(self, h2_mech):
        grid, u0 = _flame_front_state(h2_mech)
        u_off, _ = _run_parallel(h2_mech, grid, u0, "off")
        for policy in BALANCED:
            u_bal, solver = _run_parallel(h2_mech, grid, u0, policy)
            plan = solver.chemlb.last_plan
            assert plan is not None and plan.cells_shipped > 0
            assert np.array_equal(u_off, u_bal), (
                f"{policy}: conserved state differs from off"
            )

    def test_balanced_under_faults_matches_off_bitwise(self, h2_mech):
        grid, u0 = _flame_front_state(h2_mech)
        u_off, _ = _run_parallel(h2_mech, grid, u0, "off")
        inj = FaultInjector(seed=42)
        inj.add("chemlb.ship", mode="drop", probability=0.5)
        inj.add("chemlb.reply", mode="corrupt", probability=0.3)
        u_bal, _ = _run_parallel(h2_mech, grid, u0, "greedy", injector=inj)
        assert np.array_equal(u_off, u_bal)

    def test_off_policy_has_no_balancer(self, h2_mech):
        grid, u0 = _flame_front_state(h2_mech)
        _, solver = _run_parallel(h2_mech, grid, u0, "off", steps=1)
        assert solver.chemlb is None


# ---------------------------------------------------------------------------
# perfmodel consistency
# ---------------------------------------------------------------------------
class TestPerfmodelPrediction:
    def test_profile_matches_runtime_planner(self):
        from repro.perfmodel import (
            chemistry_imbalance,
            predicted_chemistry_profile,
            predicted_chemistry_speedup,
        )

        rng = np.random.default_rng(3)
        costs = [1.0 + 9.0 * (r == 1) * rng.random(50) for r in range(4)]
        before, after = predicted_chemistry_profile(costs, policy="greedy")
        plan = plan_assignment(costs, policy="greedy")
        assert np.array_equal(before, plan.loads_before)
        assert np.array_equal(after, plan.loads_after)
        assert chemistry_imbalance(after) < chemistry_imbalance(before)
        assert predicted_chemistry_speedup(costs, policy="greedy") > 1.0
