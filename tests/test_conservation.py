"""Regression tests: discrete conservation of the inviscid periodic
solver over many steps, and bit-identical conserved-state restart through
the simulated file system (the property a production DNS restart chain
must have: a resumed run is *the same run*)."""

import numpy as np
import pytest

from repro.core import Grid, S3DSolver, SolverConfig, ic
from repro.core.config import periodic_boundaries
from repro.io import SimFileSystem, lustre
from repro.io.restart import load_solver_state, save_solver_state
from repro.util.constants import P_ATM


def _pulse_solver(mech, Y, n=48, **cfg_kwargs):
    grid = Grid((n,), (1.0,), periodic=(True,))
    state = ic.pressure_pulse(mech, grid, p0=P_ATM, T0=300.0, Y=Y,
                              amplitude=1e-3, width=0.05)
    cfg = SolverConfig(boundaries=periodic_boundaries(1), cfl=0.5,
                       filter_interval=1, filter_alpha=0.2, **cfg_kwargs)
    return S3DSolver(state, cfg, transport=None, reacting=False)


class TestLongRunConservation:
    @pytest.fixture(scope="class")
    def run20(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        vol = solver.state.grid.cell_volumes()
        u0 = solver.state.u.copy()
        m0 = solver.state.total_mass()
        e0 = solver.state.total_energy()
        mom0 = float((solver.state.u[solver.state.i_mom(0)] * vol).sum())
        for _ in range(20):
            solver.step()
        return solver, u0, m0, e0, mom0

    def test_mass_conserved_over_20_steps(self, run20):
        solver, _, m0, _, _ = run20
        assert abs(solver.state.total_mass() - m0) / m0 < 1e-12

    def test_energy_conserved_over_20_steps(self, run20):
        solver, _, _, e0, _ = run20
        assert abs(solver.state.total_energy() - e0) / abs(e0) < 1e-12

    def test_momentum_conserved_over_20_steps(self, run20):
        solver, u0, m0, _, mom0 = run20
        vol = solver.state.grid.cell_volumes()
        mom1 = float((solver.state.u[solver.state.i_mom(0)] * vol).sum())
        # the pulse has zero net momentum; compare against the mass scale
        assert abs(mom1 - mom0) / m0 < 1e-12

    def test_state_actually_evolved(self, run20):
        solver, u0, _, _, _ = run20
        assert np.abs(solver.state.u - u0).max() > 0


class TestBitIdenticalRestart:
    def test_save_load_roundtrip_is_bitwise(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        for _ in range(5):
            solver.step()
        u_saved = solver.state.u.copy()
        t_saved, n_saved = solver.time, solver.step_count

        fs = SimFileSystem(lustre())
        save_solver_state(fs, solver, "restart.0005")

        # perturb, then restore into the same solver
        solver.state.u += 1.0
        solver.time, solver.step_count = -1.0, -1
        load_solver_state(fs, solver, "restart.0005")
        assert np.array_equal(solver.state.u, u_saved)  # bitwise
        assert solver.time == t_saved
        assert solver.step_count == n_saved

    def test_restored_run_continues_bitwise(self, air_mech, air_y):
        """Two solvers restored from the same file take identical steps:
        the restart file pins the entire trajectory."""
        src = _pulse_solver(air_mech, air_y)
        for _ in range(4):
            src.step()
        fs = SimFileSystem(lustre())
        save_solver_state(fs, src, "ckpt")

        a = _pulse_solver(air_mech, air_y)
        b = _pulse_solver(air_mech, air_y)
        load_solver_state(fs, a, "ckpt")
        load_solver_state(fs, b, "ckpt")
        assert np.array_equal(a.state.u, b.state.u)
        for _ in range(6):
            a.step()
            b.step()
        assert a.time == b.time
        assert np.array_equal(a.state.u, b.state.u)  # bitwise, 6 steps later

    def test_load_rejects_wrong_magic(self, air_mech, air_y):
        from repro.io.filesystem import WriteRequest

        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        fs.open("junk")
        fs.phase_write([WriteRequest(0, "junk", 0, b"\x00" * 4096)])
        with pytest.raises(ValueError, match="not a conserved-state"):
            load_solver_state(fs, solver, "junk")

    def test_load_rejects_shape_mismatch(self, air_mech, air_y):
        big = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        save_solver_state(fs, big, "ckpt48")
        small = _pulse_solver(air_mech, air_y, n=32)
        with pytest.raises(ValueError, match="does not match"):
            load_solver_state(fs, small, "ckpt48")

    def test_save_records_telemetry(self, air_mech, air_y):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        save_solver_state(fs, solver, "ckpt", telemetry=tel)
        nbytes = tel.metrics.counter("io.restart.bytes").value
        assert nbytes > solver.state.u.nbytes  # payload + header
        assert tel.metrics.histograms["io.open_time"].count == 1
