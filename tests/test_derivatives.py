"""Tests for the 8th-order derivative operator and Fornberg weights."""

import math

import numpy as np
import pytest

from repro.core.derivatives import (
    CENTRAL8,
    DerivativeOperator,
    fornberg_weights,
    gradient_operators,
)
from repro.core.grid import Grid


class TestFornberg:
    def test_central_second_order(self):
        w = fornberg_weights(0.0, [-1.0, 0.0, 1.0], 1)[1]
        np.testing.assert_allclose(w, [-0.5, 0.0, 0.5], atol=1e-14)

    def test_one_sided_first_order(self):
        w = fornberg_weights(0.0, [0.0, 1.0], 1)[1]
        np.testing.assert_allclose(w, [-1.0, 1.0], atol=1e-14)

    def test_exact_on_polynomials(self):
        nodes = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        w = fornberg_weights(1.5, nodes, 1)[1]
        for deg in range(5):
            f = nodes**deg
            expected = deg * 1.5 ** (deg - 1) if deg else 0.0
            assert np.dot(w, f) == pytest.approx(expected, abs=1e-10)

    def test_interpolation_row(self):
        w = fornberg_weights(0.5, [0.0, 1.0], 0)[0]
        np.testing.assert_allclose(w, [0.5, 0.5], atol=1e-14)

    def test_reproduces_central8(self):
        nodes = np.arange(-4.0, 5.0)
        w = fornberg_weights(0.0, nodes, 1)[1]
        np.testing.assert_allclose(w[5:], CENTRAL8, rtol=1e-12)
        np.testing.assert_allclose(w[:4], -CENTRAL8[::-1], rtol=1e-12)


class TestDerivativeOperator:
    def test_periodic_spectral_like_accuracy(self):
        n, L = 64, 2 * np.pi
        x = np.arange(n) * L / n
        op = DerivativeOperator(n, L / n, periodic=True)
        err = np.abs(op(np.sin(3 * x)) - 3 * np.cos(3 * x)).max()
        assert err < 1e-6

    def test_periodic_convergence_order(self):
        errs = []
        for n in (16, 32):
            L = 2 * np.pi
            x = np.arange(n) * L / n
            op = DerivativeOperator(n, L / n, periodic=True)
            errs.append(np.abs(op(np.sin(3 * x)) - 3 * np.cos(3 * x)).max())
        order = math.log2(errs[0] / errs[1])
        assert order > 7.0  # formally 8th order

    def test_nonperiodic_convergence(self):
        errs = []
        for n in (33, 65):
            x = np.linspace(0, 1, n)
            op = DerivativeOperator(n, x[1] - x[0], periodic=False)
            errs.append(np.abs(op(np.sin(6 * x)) - 6 * np.cos(6 * x)).max())
        order = math.log2(errs[0] / errs[1])
        assert order > 3.5  # boundary closures are 4th order

    def test_polynomial_exactness_interior(self):
        n = 41
        x = np.linspace(0, 1, n)
        op = DerivativeOperator(n, x[1] - x[0], periodic=False)
        d = op(x**6)
        w = 4
        np.testing.assert_allclose(d[w:-w], 6 * x[w:-w] ** 5, atol=1e-11)

    def test_constant_derivative_zero(self):
        op = DerivativeOperator(32, 0.1, periodic=False)
        assert np.abs(op(np.full(32, 7.0))).max() < 1e-12

    def test_linear_exact_including_boundary(self):
        n = 20
        x = np.linspace(0, 1, n)
        op = DerivativeOperator(n, x[1] - x[0], periodic=False)
        np.testing.assert_allclose(op(3 * x + 1), 3.0, rtol=1e-10)

    def test_multidimensional_axis(self):
        nx, ny = 24, 32
        x = np.linspace(0, 1, nx)
        y = np.linspace(0, 2, ny)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        f = np.sin(2 * xx) * np.cos(yy)
        op_y = DerivativeOperator(ny, y[1] - y[0], periodic=False)
        d = op_y.apply(f, axis=1)
        np.testing.assert_allclose(d, -np.sin(2 * xx) * np.sin(yy), atol=1e-5)

    def test_wrong_axis_length_raises(self):
        op = DerivativeOperator(32, 0.1)
        with pytest.raises(ValueError, match="axis 0"):
            op(np.zeros(31))

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError, match="at least"):
            DerivativeOperator(5, 0.1)

    def test_metric_array(self):
        """Stretched coordinates via the metric reproduce chain rule."""
        n = 64
        s = np.linspace(0, 1, n)  # index-like coordinate
        x = s**2 + s  # stretched physical coordinate
        dxds = 2 * s + 1
        op = DerivativeOperator(n, (1.0 / dxds) * (1 / (s[1] - s[0])), periodic=False)
        f = np.sin(2 * x)
        d = op(f)
        np.testing.assert_allclose(d, 2 * np.cos(2 * x), atol=2e-4)

    def test_metric_wrong_shape(self):
        with pytest.raises(ValueError, match="metric"):
            DerivativeOperator(32, np.ones(31))

    def test_out_parameter(self):
        op = DerivativeOperator(32, 0.5, periodic=True)
        f = np.sin(np.arange(32) * 2 * np.pi / 32)
        out = np.empty(32)
        res = op.apply(f, axis=0, out=out)
        assert res is out


class TestGradientOperators:
    def test_one_per_axis(self):
        grid = Grid((32, 48), (1.0, 2.0), periodic=(True, False))
        ops = gradient_operators(grid)
        assert len(ops) == 2
        assert ops[0].periodic and not ops[1].periodic

    def test_gradient_on_stretched_grid(self):
        grid = Grid((16, 64), (1.0, 2.0), periodic=(True, False), stretch=(1.0, 3.0))
        ops = gradient_operators(grid)
        xx, yy = grid.meshgrid()
        f = yy**2
        d = ops[1].apply(f, axis=1)
        np.testing.assert_allclose(d, 2 * yy, rtol=1e-2, atol=1e-3)


class TestBatchedSweeps:
    """The fast apply/apply_stack paths against the preserved naive sweep."""

    @pytest.mark.parametrize("periodic", [True, False])
    def test_apply_matches_naive_bitwise(self, periodic):
        rng = np.random.default_rng(0)
        op = DerivativeOperator(48, 0.02, periodic=periodic)
        f = rng.random((48, 6))
        assert np.array_equal(op.apply(f), op.apply_naive(f))

    @pytest.mark.parametrize("periodic", [True, False])
    def test_apply_matches_naive_strided_axis(self, periodic):
        # axis != 0 exercises the contiguity-staging path in _dispatch
        rng = np.random.default_rng(1)
        op = DerivativeOperator(32, 0.02, periodic=periodic)
        f = rng.random((12, 32, 5))
        assert np.array_equal(op.apply(f, axis=1), op.apply_naive(f, axis=1))

    def test_apply_matches_naive_stretched_metric(self):
        grid = Grid((16, 48), (1.0, 2.0), periodic=(False, False),
                    stretch=(1.0, 3.0))
        op = gradient_operators(grid)[1]
        f = np.random.default_rng(2).random((16, 48))
        assert np.array_equal(op.apply(f, axis=1), op.apply_naive(f, axis=1))

    def test_apply_stack_matches_per_field(self):
        rng = np.random.default_rng(3)
        op = DerivativeOperator(24, 0.01, periodic=True)
        stack = rng.random((7, 16, 24))
        out = np.empty_like(stack)
        res = op.apply_stack(stack, axis=1, out=out)
        assert res is out
        for k in range(stack.shape[0]):
            assert np.array_equal(out[k], op.apply(stack[k], axis=1))

    @pytest.mark.parametrize("periodic", [True, False])
    def test_out_aliasing_input_is_safe(self, periodic):
        rng = np.random.default_rng(4)
        op = DerivativeOperator(40, 0.01, periodic=periodic)
        f = rng.random(40)
        expected = op.apply(f)
        res = op.apply(f, out=f)
        assert res is f
        assert np.array_equal(f, expected)

    @pytest.mark.parametrize("periodic", [True, False])
    def test_every_row_written(self, periodic):
        # the non-periodic interior writes into non-zeroed output; a
        # NaN-poisoned out= buffer proves every row is overwritten
        rng = np.random.default_rng(5)
        op = DerivativeOperator(32, 0.01, periodic=periodic)
        f = rng.random((32, 4))
        out = np.full_like(f, np.nan)
        op.apply(f, out=out)
        assert np.isfinite(out).all()
        assert np.array_equal(out, op.apply_naive(f))

    def test_warm_apply_reuses_scratch(self):
        op = DerivativeOperator(64, 0.01, periodic=True)
        f = np.random.default_rng(6).random((64, 8))
        out = np.empty_like(f)
        op.apply(f, out=out)
        n = len(op._scratch)
        op.apply(f, out=out)
        assert len(op._scratch) == n
