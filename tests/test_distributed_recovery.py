"""Distributed run supervision: coordinated checkpoints + rank recovery.

The ISSUE 7 acceptance criteria: a seeded worker kill (or hang)
mid-run must complete via rollback-and-replay to a final state
*bitwise identical* to a fault-free run on the in-process reference
transport and within 1e-12 relative on the multiprocessing backend —
under both the ``respawn`` and ``shrink`` recovery policies, with
chemistry load balancing on and off. Policy ``off`` must leave results
bitwise identical to a plain ``solver.run``.

Fault schedules are seeded through ``REPRO_FAULT_SEED`` (the CI
recovery lane sweeps {1, 7, 42}) so every run is reproducible and
different lanes exercise different kill sites.

The scenario is a 1-D 64-cell reacting H2/air hot-spot: 1-D slab
decompositions of this grid are *bitwise* decomposition-independent
(asserted by ``test_shrink_matches_reference``), which is what lets
the shrink policy promise bit-exact continuation on fewer ranks.
"""

import random

import numpy as np
import pytest

from repro.chemistry.mechanisms.builders import h2_li2004
from repro.core.config import SolverConfig, periodic_boundaries
from repro.core.grid import Grid
from repro.core.state import State
from repro.io import SimFileSystem, lustre
from repro.io.restart import (
    load_state_shard,
    read_checkpoint_manifest,
    save_state_shard,
    verify_state_shard,
    write_checkpoint_manifest,
)
from repro.parallel import shm
from repro.parallel.comm import InProcessTransport, create_transport
from repro.parallel.decomp import CartesianDecomposition
from repro.parallel.programs import make_chained, make_sleeper
from repro.parallel.shm import MultiprocessingTransport
from repro.parallel.solver import DEEP_HALO, ParallelPeriodicSolver
from repro.resilience import (
    RankFailedError,
    RankUnresponsiveError,
    ResilienceExhaustedError,
    RestartCorruptionError,
)
from repro.resilience.distributed import (
    DistributedCheckpointRing,
    ENV_VAR,
    resolve_recovery_policy,
    shrink_decomposition,
)
from repro.resilience.faults import FaultInjector, seed_from_env
from repro.telemetry import Telemetry
from repro.transport import ConstantLewisTransport
from repro.util.constants import P_ATM

pytestmark = pytest.mark.recovery

#: multiprocessing contract bound (in practice the backends agree bitwise)
MP_RTOL = 1e-12

#: per-lane fault schedule seed (CI sweeps REPRO_FAULT_SEED in {1, 7, 42})
SEED = seed_from_env(7)

N_RANKS = 4
N_STEPS = 4
DT = 2e-8


def _h2_solver(nprocs=N_RANKS, policy="off", chem="off",
               transport_name="inprocess", faults=None, heartbeat=None,
               telemetry=None):
    """1-D reacting H2/air hot-spot on an ``nprocs``-rank slab."""
    mech = h2_li2004()
    grid = Grid((64,), (4e-3,), periodic=(True,))
    x = grid.coords[0]
    T = 900.0 + 500.0 * np.exp(-((x - 2e-3) ** 2) / (2 * (4e-4) ** 2))
    Y = np.zeros((mech.n_species,) + grid.shape)
    names = list(mech.species_names)
    Y[names.index("H2")] = 0.028
    Y[names.index("O2")] = 0.226
    Y[names.index("N2")] = 1.0 - 0.028 - 0.226
    rho = mech.density(P_ATM, T, Y)
    state = State.from_primitive(mech, grid, rho, [1.0], T, Y)
    decomp = CartesianDecomposition(grid.shape, (nprocs,),
                                    periodic=grid.periodic)
    kwargs = {}
    if transport_name == "multiprocessing" and heartbeat is not None:
        kwargs["heartbeat"] = heartbeat
    world = create_transport(transport_name, size=nprocs,
                             fault_injector=faults, **kwargs)
    solver = ParallelPeriodicSolver(
        mech, grid, decomp, world=world,
        transport=ConstantLewisTransport(mech), reacting=True,
        scheme="ck45", filter_alpha=0.2, chem_load_balance=chem,
        parallel_recovery=policy, telemetry=telemetry,
    )
    solver._owns_world = True  # solver adopts the transport we built
    solver.set_state(state.u)
    return solver


@pytest.fixture(scope="module")
def u_ref():
    """Fault-free reference final state (in-process, 4 ranks)."""
    solver = _h2_solver()
    try:
        solver.run(N_STEPS, DT)
        return np.array(solver.gather_state(), copy=True)
    finally:
        solver.close()


def _kill_injector(mode: str, seed: int = SEED):
    """Seeded single-shot rank kill/hang somewhere in the first ~2 steps."""
    rng = random.Random(seed)
    inj = FaultInjector(seed=seed)
    inj.add("exec.call", mode=mode, count=1, after=1 + rng.randrange(12),
            rank=rng.randrange(N_RANKS))
    return inj


# ---------------------------------------------------------------------------
class TestShardFormat:
    """Rank-sharded checkpoint format (restart v2 + shard magic)."""

    def _fs(self):
        return SimFileSystem(lustre())

    def test_roundtrip_with_cache(self):
        fs = self._fs()
        u = np.arange(13 * 16, dtype=float).reshape(13, 16) * 0.5
        cache = np.linspace(300.0, 1500.0, 16)
        save_state_shard(fs, "a.shard", 7, 1.5e-6, u, cache_block=cache)
        out = load_state_shard(fs, "a.shard")
        assert out["step"] == 7
        assert out["time"] == 1.5e-6
        assert np.array_equal(out["u"], u)
        assert np.array_equal(out["cache"], cache)

    def test_roundtrip_without_cache(self):
        fs = self._fs()
        u = np.random.default_rng(SEED).random((13, 16))
        save_state_shard(fs, "b.shard", 3, 0.0, u)
        out = load_state_shard(fs, "b.shard")
        assert out["cache"] is None
        assert np.array_equal(out["u"], u)
        meta = verify_state_shard(fs, "b.shard")
        assert meta["step"] == 3 and not meta["has_cache"]

    def test_cache_shape_mismatch_rejected(self):
        fs = self._fs()
        u = np.zeros((13, 16))
        with pytest.raises(ValueError, match="cache shape"):
            save_state_shard(fs, "c.shard", 0, 0.0, u,
                             cache_block=np.zeros(15))

    def test_corrupt_payload_fails_checksum(self):
        fs = self._fs()
        u = np.ones((3, 8))
        save_state_shard(fs, "d.shard", 1, 0.0, u)
        from repro.io.filesystem import WriteRequest

        fs.phase_write([WriteRequest(0, "d.shard", fs.file_size("d.shard") - 4,
                                     b"\xde\xad\xbe\xef")])
        with pytest.raises(RestartCorruptionError, match="checksum"):
            verify_state_shard(fs, "d.shard")

    def test_wrong_magic_rejected(self):
        fs = self._fs()
        fs.open("e.shard", n_clients=1)
        from repro.io.filesystem import WriteRequest

        fs.phase_write([WriteRequest(0, "e.shard", 0, b"\x00" * 64)])
        with pytest.raises(RestartCorruptionError, match="not a"):
            verify_state_shard(fs, "e.shard")

    def test_manifest_roundtrip(self):
        fs = self._fs()
        meta = {"step": 4, "time": 8e-8, "n_ranks": 2,
                "shards": ["x.r0.shard", "x.r1.shard"]}
        write_checkpoint_manifest(fs, "x.manifest", meta)
        out = read_checkpoint_manifest(fs, "x.manifest")
        assert out["step"] == 4 and out["shards"] == meta["shards"]

    def test_tampered_manifest_fails_crc(self):
        fs = self._fs()
        write_checkpoint_manifest(fs, "y.manifest", {"step": 4})
        raw = fs.read("y.manifest", 0, fs.file_size("y.manifest"))
        from repro.io.filesystem import WriteRequest

        tampered = raw.replace(b'"step":4', b'"step":9')
        fs.phase_write([WriteRequest(0, "y.manifest", 0, tampered)])
        with pytest.raises(RestartCorruptionError, match="checksum"):
            read_checkpoint_manifest(fs, "y.manifest")

    def test_garbage_manifest_is_descriptive(self):
        fs = self._fs()
        fs.open("z.manifest", n_clients=1)
        from repro.io.filesystem import WriteRequest

        fs.phase_write([WriteRequest(0, "z.manifest", 0, b"\xff\xfenot json")])
        with pytest.raises(RestartCorruptionError, match="manifest"):
            read_checkpoint_manifest(fs, "z.manifest")


# ---------------------------------------------------------------------------
class TestDistributedRing:
    """Two-phase-commit checkpoint ring over per-rank shards."""

    def test_save_commits_shards_and_manifest(self):
        solver = _h2_solver()
        try:
            fs = SimFileSystem(lustre())
            ring = DistributedCheckpointRing(fs, prefix="ck")
            manifest = ring.save(solver)
            names = fs.listdir("ck")
            assert manifest in names
            assert sum(1 for n in names if n.endswith(".shard")) == N_RANKS
            # two-phase commit: no uncommitted temporaries survive a save
            assert not [n for n in names if n.endswith(".tmp")]
            meta = read_checkpoint_manifest(fs, manifest)
            assert meta["n_ranks"] == N_RANKS
            assert tuple(meta["proc_shape"]) == (N_RANKS,)
        finally:
            solver.close()

    def test_ring_keeps_last_k(self):
        solver = _h2_solver()
        try:
            fs = SimFileSystem(lustre())
            ring = DistributedCheckpointRing(fs, prefix="ck", keep=2)
            for _ in range(3):
                ring.save(solver)
                solver.step(DT)
            assert len(ring.entries()) == 2
            assert ring.newest_step == 2
            # pruned checkpoints leave neither manifest nor shards behind
            steps_on_disk = {n.split(".")[1] for n in fs.listdir("ck")}
            assert steps_on_disk == {"00000001", "00000002"}
        finally:
            solver.close()

    def test_restore_rolls_back_bitwise(self, u_ref):
        solver = _h2_solver()
        try:
            fs = SimFileSystem(lustre())
            ring = DistributedCheckpointRing(fs, prefix="ck")
            solver.step(DT)
            ring.save(solver)
            saved = np.array(solver.gather_state(), copy=True)
            solver.step(DT)
            solver.step(DT)
            restored = ring.restore(solver)
            assert restored["step"] == 1 and restored["fallbacks"] == 0
            assert solver.step_count == 1
            assert np.array_equal(solver.gather_state(), saved)
            # the replayed trajectory matches the uninterrupted one
            for _ in range(N_STEPS - 1):
                solver.step(DT)
            assert np.array_equal(solver.gather_state(), u_ref)
        finally:
            solver.close()

    def test_torn_checkpoint_is_invisible(self):
        """A checkpoint missing its manifest (torn before commit) is
        skipped whole; restore falls back to the previous one."""
        solver = _h2_solver()
        try:
            fs = SimFileSystem(lustre())
            ring = DistributedCheckpointRing(fs, prefix="ck")
            ring.save(solver)
            solver.step(DT)
            newest = ring.save(solver)
            fs.unlink(newest)  # sever the commit record
            restored = ring.restore(solver)
            assert restored["step"] == 0
            assert restored["fallbacks"] == 1
        finally:
            solver.close()

    def test_corrupt_shard_poisons_whole_checkpoint(self):
        solver = _h2_solver()
        try:
            fs = SimFileSystem(lustre())
            ring = DistributedCheckpointRing(fs, prefix="ck")
            ring.save(solver)
            solver.step(DT)
            ring.save(solver)
            shard = ring.shard_path(1, 2)
            from repro.io.filesystem import WriteRequest

            fs.phase_write([WriteRequest(0, shard,
                                         fs.file_size(shard) - 8,
                                         b"\x00" * 8)])
            restored = ring.restore(solver)
            assert restored["step"] == 0 and restored["fallbacks"] == 1
        finally:
            solver.close()

    def test_empty_ring_exhausts(self):
        solver = _h2_solver()
        try:
            fs = SimFileSystem(lustre())
            ring = DistributedCheckpointRing(fs, prefix="ck")
            with pytest.raises(ResilienceExhaustedError, match="ring"):
                ring.restore(solver)
        finally:
            solver.close()

    def test_load_global_matches_gather(self):
        solver = _h2_solver()
        try:
            fs = SimFileSystem(lustre())
            ring = DistributedCheckpointRing(fs, prefix="ck")
            solver.step(DT)
            ring.save(solver)
            data = ring.load_global()
            assert data["step"] == 1
            assert np.array_equal(data["u"], solver.gather_state())
            assert data["cache"] is not None  # reacting run has hot caches
        finally:
            solver.close()


# ---------------------------------------------------------------------------
class TestShrinkDecomposition:
    def _decomp(self, n=64, p=4):
        return CartesianDecomposition((n,), (p,), periodic=(True,))

    def test_shrinks_to_survivors(self):
        d = shrink_decomposition(self._decomp(), 3)
        assert d.proc_shape == (3,) and d.global_shape == (64,)
        assert d.periodic == (True,)

    def test_respects_deep_halo_floor(self):
        # 64 cells over 3 ranks -> 21-cell blocks, fine; over 7 ranks the
        # 9-cell halo would outrun the 9-cell block boundary at 64//7=9,
        # which is exactly legal; 64//8=8 < DEEP_HALO must shrink further
        d = shrink_decomposition(self._decomp(), 8)
        assert 64 // d.proc_shape[0] >= DEEP_HALO

    def test_single_rank_always_legal(self):
        d = shrink_decomposition(self._decomp(n=16, p=1), 1)
        assert d.size == 1

    def test_multi_axis_split_rejected(self):
        d2 = CartesianDecomposition((64, 64), (2, 2), periodic=(True, True))
        with pytest.raises(ResilienceExhaustedError, match="slab"):
            shrink_decomposition(d2, 3)


# ---------------------------------------------------------------------------
class TestPolicyResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "shrink")
        assert resolve_recovery_policy("respawn") == "respawn"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "shrink")
        assert resolve_recovery_policy(None) == "shrink"
        monkeypatch.delenv(ENV_VAR)
        assert resolve_recovery_policy(None) == "off"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown parallel recovery"):
            resolve_recovery_policy("retreat")

    def test_config_validates_policy(self):
        grid = Grid((16,), (1.0,), periodic=(True,))
        good = SolverConfig(boundaries=periodic_boundaries(1),
                            parallel_recovery="respawn")
        good.validate(grid)
        bad = SolverConfig(boundaries=periodic_boundaries(1),
                           parallel_recovery="retreat")
        with pytest.raises(ValueError, match="unknown parallel recovery"):
            bad.validate(grid)


# ---------------------------------------------------------------------------
class TestRecoveryInProcess:
    """Seeded kill/hang matrix on the bitwise reference transport."""

    @pytest.mark.parametrize("chem", ["off", "greedy"])
    @pytest.mark.parametrize("policy", ["respawn", "shrink"])
    @pytest.mark.parametrize("mode", ["rank_failure", "hang"])
    def test_recovered_state_is_bitwise(self, u_ref, mode, policy, chem):
        inj = _kill_injector(mode)
        solver = _h2_solver(policy=policy, chem=chem, faults=inj)
        try:
            fs = SimFileSystem(lustre())
            report = solver.run_resilient(fs, N_STEPS, DT)
            assert report.recoveries >= 1
            assert report.steps_completed == N_STEPS
            if policy == "shrink":
                assert report.final_world_size < N_RANKS
            assert np.array_equal(solver.gather_state(), u_ref), (
                f"{mode}/{policy}/chemlb={chem}: recovered state diverged "
                f"from the fault-free reference (seed {SEED})"
            )
            ev = report.history[0]
            assert ev.dead_ranks and ev.policy == policy
            assert ev.restored_step <= ev.at_step
        finally:
            solver.close()

    def test_off_policy_is_plain_run(self, u_ref):
        solver = _h2_solver(policy="off")
        try:
            fs = SimFileSystem(lustre())
            report = solver.run_resilient(fs, N_STEPS, DT)
            assert report.clean
            assert report.checkpoints_written == 0
            assert not fs.listdir("parallel")  # zero checkpoint traffic
            assert np.array_equal(solver.gather_state(), u_ref)
        finally:
            solver.close()

    def test_recovery_budget_exhausts(self):
        inj = FaultInjector(seed=SEED)
        inj.add("exec.call", mode="rank_failure", count=50, after=1,
                rank=0)
        solver = _h2_solver(policy="respawn", faults=inj)
        try:
            fs = SimFileSystem(lustre())
            with pytest.raises(ResilienceExhaustedError, match="budget"):
                solver.run_resilient(fs, N_STEPS, DT, max_recoveries=2)
        finally:
            solver.close()

    def test_recovery_counters_recorded(self):
        tel = Telemetry()
        inj = _kill_injector("rank_failure")
        solver = _h2_solver(policy="respawn", faults=inj, telemetry=tel)
        try:
            fs = SimFileSystem(lustre())
            report = solver.run_resilient(fs, N_STEPS, DT)
            assert (tel.counter("resilience.parallel_recoveries").value
                    == report.recoveries)
            assert (tel.counter("resilience.ranks_respawned").value
                    == report.ranks_respawned)
            assert tel.counter("resilience.checkpoints_written").value >= 1
        finally:
            solver.close()

    def test_shrink_matches_reference(self, u_ref):
        """The property shrink relies on: 1-D slab runs of this scenario
        are bitwise decomposition-independent."""
        for nprocs in (3, 2, 1):
            solver = _h2_solver(nprocs=nprocs)
            try:
                solver.run(N_STEPS, DT)
                assert np.array_equal(solver.gather_state(), u_ref), (
                    f"{nprocs}-rank run diverged from the 4-rank reference"
                )
            finally:
                solver.close()


# ---------------------------------------------------------------------------
class TestExceptionFidelity:
    """Worker exceptions must surface with cause chain + origin rank."""

    def test_inprocess_preserves_cause_and_rank(self):
        world = InProcessTransport(3)
        world.start_programs(make_chained, [(1,)] * 3)
        with pytest.raises(ValueError, match="reaction rates") as excinfo:
            world.call_all("work")
        assert excinfo.value.rank == 1
        assert isinstance(excinfo.value.__cause__, KeyError)
        world.close()

    @pytest.mark.slow
    def test_multiprocessing_preserves_cause_and_rank(self):
        world = MultiprocessingTransport(2)
        try:
            world.start_programs(make_chained, [(1,)] * 2)
            with pytest.raises(ValueError, match="reaction rates") as excinfo:
                world.call_all("work")
            assert excinfo.value.rank == 1
            cause = excinfo.value.__cause__
            assert isinstance(cause, KeyError)
            assert "chemistry table" in str(cause)
        finally:
            world.close()


# ---------------------------------------------------------------------------
class TestLiveness:
    def test_inprocess_hang_injection_is_typed(self):
        inj = FaultInjector(seed=SEED)
        inj.add("exec.call", mode="hang", count=1, rank=2)
        world = InProcessTransport(3, fault_injector=inj)
        world.start_programs(make_chained, [(99,)] * 3)  # no rank fails
        with pytest.raises(RankUnresponsiveError, match="stopped responding"):
            world.call_all("work")
        assert 2 in world.failed_ranks
        world.close()

    def test_heartbeat_env_and_validation(self, monkeypatch):
        monkeypatch.setenv(shm.HEARTBEAT_ENV, "2.5")
        world = MultiprocessingTransport(1)
        assert world.heartbeat == 2.5
        world.close()
        with pytest.raises(ValueError, match="heartbeat"):
            MultiprocessingTransport(1, heartbeat=-1.0)

    @pytest.mark.slow
    def test_genuine_hang_trips_heartbeat(self):
        """A worker that really blocks (no injection theatre) is killed
        and surfaced as RankUnresponsiveError by the deadline."""
        world = MultiprocessingTransport(2, heartbeat=0.5)
        try:
            world.start_programs(make_sleeper, [(0, 30.0)] * 2)
            with pytest.raises(RankUnresponsiveError, match="heartbeat"):
                world.call_all("work")
            assert 0 in world.failed_ranks
        finally:
            world.close()


# ---------------------------------------------------------------------------
class TestReviveAndReset:
    def test_inprocess_revive_restarts_program(self):
        world = InProcessTransport(3)
        world.start_programs(make_chained, [(99,)] * 3)
        world.fail_rank(1)
        with pytest.raises(RankFailedError):
            world.call_all("work")
        world.revive_ranks([1])
        assert world.failed_ranks == set()
        assert world.call_all("work") == [0, 1, 2]
        world.close()

    def test_revive_validates_range(self):
        world = InProcessTransport(2)
        with pytest.raises(ValueError, match="out of range"):
            world.revive_ranks([5])
        world.close()

    def test_reset_channels_purges_mailboxes(self):
        world = InProcessTransport(2)
        world.comm(0).Send(np.arange(3.0), dest=1, tag=9)
        assert world.comm(1).probe(source=0, tag=9)
        world.reset_channels()
        assert not world.comm(1).probe(source=0, tag=9)
        assert world.pending_messages() == 0
        world.close()

    @pytest.mark.slow
    def test_multiprocessing_revive_respawns_worker(self):
        inj = FaultInjector(seed=SEED)
        inj.add("exec.call", mode="rank_failure", count=1,
                rank=1)
        world = MultiprocessingTransport(2, fault_injector=inj)
        try:
            world.start_programs(make_chained, [(99,)] * 2)
            with pytest.raises(RankFailedError):
                world.call_all("work")
            assert 1 in world.failed_ranks
            world.revive_ranks([1])
            world.reset_channels()
            assert world.failed_ranks == set()
            assert world.call_all("work") == [0, 1]
        finally:
            world.close()


# ---------------------------------------------------------------------------
class TestOversubscription:
    def test_warns_once_and_records_gauge(self, monkeypatch):
        import os as _os

        monkeypatch.setattr(_os, "cpu_count", lambda: 1)
        monkeypatch.setattr(shm, "_OVERSUB_WARNED", False)
        tel = Telemetry()
        world = MultiprocessingTransport(2, telemetry=tel)
        try:
            with pytest.warns(RuntimeWarning, match="oversubscribed"):
                world.start_programs(make_chained, [(99,)] * 2)
            assert tel.gauge("transport.oversubscribed").value == 1
        finally:
            world.close()
        # second transport records the gauge but does not warn again
        import warnings as _warnings

        world2 = MultiprocessingTransport(2, telemetry=tel)
        try:
            with _warnings.catch_warnings():
                _warnings.simplefilter("error", RuntimeWarning)
                world2.start_programs(make_chained, [(99,)] * 2)
        finally:
            world2.close()

    def test_no_warning_when_fitting(self, monkeypatch):
        import os as _os

        monkeypatch.setattr(_os, "cpu_count", lambda: 8)
        monkeypatch.setattr(shm, "_OVERSUB_WARNED", False)
        import warnings as _warnings

        world = MultiprocessingTransport(2)
        try:
            with _warnings.catch_warnings():
                _warnings.simplefilter("error", RuntimeWarning)
                world.start_programs(make_chained, [(99,)] * 2)
        finally:
            world.close()


# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestRecoveryMultiprocessing:
    """Real process kills on the one-worker-per-rank backend."""

    def _assert_close(self, u, u_ref):
        scale = np.max(np.abs(u_ref))
        err = np.max(np.abs(u - u_ref)) / scale
        assert err <= MP_RTOL, f"relative error {err:.3e} > {MP_RTOL}"

    @pytest.mark.parametrize("policy", ["respawn", "shrink"])
    def test_worker_kill_recovers(self, u_ref, policy):
        inj = _kill_injector("rank_failure")
        solver = _h2_solver(policy=policy,
                            transport_name="multiprocessing", faults=inj)
        try:
            fs = SimFileSystem(lustre())
            report = solver.run_resilient(fs, N_STEPS, DT)
            assert report.recoveries >= 1
            assert report.steps_completed == N_STEPS
            self._assert_close(solver.gather_state(), u_ref)
        finally:
            solver.close()

    def test_real_hang_recovers_via_heartbeat(self, u_ref):
        inj = _kill_injector("hang")
        solver = _h2_solver(policy="respawn",
                            transport_name="multiprocessing", faults=inj,
                            heartbeat=1.0)
        try:
            fs = SimFileSystem(lustre())
            report = solver.run_resilient(fs, N_STEPS, DT)
            assert report.recoveries >= 1
            assert "RankUnresponsiveError" in report.history[0].error
            self._assert_close(solver.gather_state(), u_ref)
        finally:
            solver.close()

    def test_default_transport_from_env(self, u_ref):
        """The CI recovery lane's REPRO_TRANSPORT choice is honoured
        when no backend is named explicitly."""
        from repro.parallel.comm import resolve_transport_name

        expected = resolve_transport_name(None)
        inj = _kill_injector("rank_failure")
        solver = _h2_solver(policy="respawn", transport_name=None,
                            faults=inj)
        try:
            assert solver.world.name == expected
            fs = SimFileSystem(lustre())
            report = solver.run_resilient(fs, N_STEPS, DT)
            assert report.recoveries >= 1
            if expected == "inprocess":
                assert np.array_equal(solver.gather_state(), u_ref)
            else:
                self._assert_close(solver.gather_state(), u_ref)
        finally:
            solver.close()
