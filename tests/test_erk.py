"""Tests for the ERK integrators: orders, low-storage equivalence."""

import math

import numpy as np
import pytest

from repro.core.erk import ERKIntegrator, SCHEMES


def _linear_exact(t):
    """Solution of u' = -u + sin(t), u(0) = 1."""
    return 1.5 * np.exp(-t) + 0.5 * (np.sin(t) - np.cos(t))


def _rhs(t, u):
    return -u + np.sin(t)


class TestSchemes:
    def test_registry(self):
        assert set(SCHEMES) == {"rkf45", "ck45", "rk4"}

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown ERK scheme"):
            ERKIntegrator("euler")

    def test_stage_counts(self):
        assert ERKIntegrator("rkf45").stages == 6
        assert ERKIntegrator("ck45").stages == 5
        assert ERKIntegrator("rk4").stages == 4

    @pytest.mark.parametrize("name", ["rkf45", "ck45", "rk4"])
    def test_fourth_order_convergence(self, name):
        integ = ERKIntegrator(name)
        errs = []
        for ns in (40, 80, 160):
            u = integ.integrate(_rhs, 0.0, np.array([1.0]), 2.0, ns)
            errs.append(abs(u[0] - _linear_exact(2.0)))
        orders = [math.log2(errs[i] / errs[i + 1]) for i in range(2)]
        assert orders[-1] > 3.6, orders

    @pytest.mark.parametrize("name", ["rkf45", "ck45", "rk4"])
    def test_exact_on_constant_rhs(self, name):
        integ = ERKIntegrator(name)
        u = integ.integrate(lambda t, u: np.array([2.0]), 0.0, np.array([1.0]), 3.0, 7)
        assert u[0] == pytest.approx(7.0, rel=1e-13)

    def test_rkf45_embedded_error_estimate(self):
        scheme = SCHEMES["rkf45"]()
        u, err = scheme.step_with_error(_rhs, 0.0, np.array([1.0]), 0.1)
        assert err is not None
        # error estimate should be of the order of the true local error
        fine = ERKIntegrator("rkf45").integrate(_rhs, 0.0, np.array([1.0]), 0.1, 100)
        assert abs(err[0]) < 1e-5
        assert abs(u[0] - fine[0]) < 1e-6

    def test_lowstorage_err_none(self):
        scheme = SCHEMES["ck45"]()
        _, err = scheme.step_with_error(_rhs, 0.0, np.array([1.0]), 0.1)
        assert err is None

    def test_system_integration(self):
        """Harmonic oscillator keeps energy to scheme accuracy."""
        integ = ERKIntegrator("ck45")

        def rhs(t, u):
            return np.array([u[1], -u[0]])

        u = integ.integrate(rhs, 0.0, np.array([1.0, 0.0]), 2 * np.pi, 200)
        assert u[0] == pytest.approx(1.0, abs=1e-7)
        assert u[1] == pytest.approx(0.0, abs=1e-7)

    def test_multidimensional_state(self):
        integ = ERKIntegrator("ck45")
        u0 = np.ones((3, 4, 5))
        u = integ.integrate(lambda t, u: -u, 0.0, u0, 1.0, 50)
        np.testing.assert_allclose(u, np.exp(-1.0), rtol=1e-8)

    def test_integrate_requires_steps(self):
        with pytest.raises(ValueError):
            ERKIntegrator("rk4").integrate(_rhs, 0.0, np.array([1.0]), 1.0, 0)

    def test_lowstorage_does_not_mutate_input(self):
        scheme = SCHEMES["ck45"]()
        u0 = np.array([1.0, 2.0])
        keep = u0.copy()
        scheme.step(_rhs, 0.0, u0, 0.01)
        np.testing.assert_array_equal(u0, keep)

    def test_butcher_does_not_mutate_input(self):
        scheme = SCHEMES["rkf45"]()
        u0 = np.array([1.0, 2.0])
        keep = u0.copy()
        scheme.step(_rhs, 0.0, u0, 0.01)
        np.testing.assert_array_equal(u0, keep)
