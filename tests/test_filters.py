"""Tests for the 10th-order explicit filter."""

import numpy as np
import pytest

from repro.core.filters import FILTER_HALF_WIDTH, FilterOperator, filter_operators
from repro.core.grid import Grid


class TestFilterOperator:
    def test_annihilates_nyquist_periodic(self):
        n = 64
        filt = FilterOperator(n, periodic=True, alpha=1.0)
        nyquist = (-1.0) ** np.arange(n)
        assert np.abs(filt(nyquist)).max() < 1e-13

    def test_preserves_constants(self):
        filt = FilterOperator(32, periodic=True, alpha=1.0)
        np.testing.assert_allclose(filt(np.full(32, 3.0)), 3.0, rtol=1e-14)

    def test_preserves_constants_nonperiodic(self):
        filt = FilterOperator(32, periodic=False, alpha=1.0)
        np.testing.assert_allclose(filt(np.full(32, 3.0)), 3.0, rtol=1e-14)

    def test_smooth_modes_nearly_untouched(self):
        n = 64
        x = np.arange(n) * 2 * np.pi / n
        filt = FilterOperator(n, periodic=True, alpha=1.0)
        f = np.sin(2 * x)
        assert np.abs(filt(f) - f).max() < 1e-5

    def test_damping_monotone_in_wavenumber(self):
        """Higher wavenumbers are damped more."""
        n = 64
        x = np.arange(n) * 2 * np.pi / n
        filt = FilterOperator(n, periodic=True, alpha=1.0)
        damps = []
        for k in (2, 8, 16, 24):
            f = np.sin(k * x)
            damps.append(np.abs(filt(f) - f).max())
        assert damps == sorted(damps)

    def test_alpha_scales_correction(self):
        n = 64
        rng = np.random.default_rng(0)
        f = rng.random(n)
        full = FilterOperator(n, periodic=True, alpha=1.0)
        half = FilterOperator(n, periodic=True, alpha=0.5)
        np.testing.assert_allclose(f - half(f), 0.5 * (f - full(f)), rtol=1e-12)

    def test_alpha_range_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            FilterOperator(32, alpha=1.5)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least"):
            FilterOperator(2 * FILTER_HALF_WIDTH)

    def test_boundary_points_identity_at_edge(self):
        """The outermost point is never filtered (non-periodic)."""
        n = 32
        rng = np.random.default_rng(1)
        f = rng.random(n)
        filt = FilterOperator(n, periodic=False, alpha=1.0)
        g = filt(f)
        assert g[0] == f[0]
        assert g[-1] == f[-1]

    def test_near_boundary_rows_preserve_linear(self):
        """Reduced-order boundary filters still pass linear functions."""
        n = 32
        x = np.linspace(0.0, 1.0, n)
        filt = FilterOperator(n, periodic=False, alpha=1.0)
        np.testing.assert_allclose(filt(2 * x + 1), 2 * x + 1, atol=1e-13)

    def test_near_boundary_damps_oscillation(self):
        n = 32
        f = (-1.0) ** np.arange(n)
        filt = FilterOperator(n, periodic=False, alpha=1.0)
        g = filt(f)
        # rows 1..4 use reduced filters that still kill the Nyquist mode
        assert np.abs(g[1:5]).max() < 1e-12

    def test_wrong_length_raises(self):
        filt = FilterOperator(32)
        with pytest.raises(ValueError):
            filt(np.zeros(30))

    def test_multidimensional(self):
        filt = FilterOperator(32, periodic=True)
        f = np.random.default_rng(2).random((16, 32))
        g = filt.apply(f, axis=1)
        assert g.shape == f.shape

    def test_idempotent_on_filtered_constants(self):
        filt = FilterOperator(64, periodic=True)
        f = np.full(64, 2.5)
        np.testing.assert_allclose(filt(filt(f)), f)


class TestFilterOperators:
    def test_factory(self):
        grid = Grid((32, 48), (1.0, 1.0), periodic=(True, False))
        ops = filter_operators(grid, alpha=0.3)
        assert len(ops) == 2
        assert ops[0].periodic and not ops[1].periodic
        assert ops[0].alpha == 0.3


class TestFilterOutPath:
    """The ghost-padded out= sweep replacing the np.roll implementation."""

    @pytest.mark.parametrize("periodic", [True, False])
    def test_out_parameter_matches_plain(self, periodic):
        rng = np.random.default_rng(7)
        filt = FilterOperator(48, periodic=periodic, alpha=0.6)
        f = rng.random((48, 5))
        expected = filt.apply(f)
        out = np.full_like(f, np.nan)
        res = filt.apply(f, out=out)
        assert res is out
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("periodic", [True, False])
    def test_out_aliasing_input_is_safe(self, periodic):
        rng = np.random.default_rng(8)
        filt = FilterOperator(40, periodic=periodic, alpha=1.0)
        f = rng.random(40)
        expected = filt(f)
        res = filt.apply(f, out=f)
        assert res is f
        assert np.array_equal(f, expected)

    def test_strided_axis_matches_axis0(self):
        rng = np.random.default_rng(9)
        filt = FilterOperator(32, periodic=True, alpha=0.8)
        f = rng.random((12, 32))
        g = filt.apply(f, axis=1)
        for i in range(f.shape[0]):
            assert np.array_equal(g[i], filt.apply(f[i]))

    def test_warm_apply_reuses_scratch(self):
        filt = FilterOperator(64, periodic=False, alpha=1.0)
        f = np.random.default_rng(10).random((64, 4))
        out = np.empty_like(f)
        filt.apply(f, out=out)
        n = len(filt._scratch)
        filt.apply(f, out=out)
        assert len(filt._scratch) == n
