"""Golden-file regression tests for the two paper scenarios.

Re-runs the tiny lifted-jet and Bunsen-box configurations of
:mod:`repro.analysis.golden` and compares their summary statistics
against the committed JSON under ``tests/goldens/``. Tolerances are
tight (1e-9 relative): loose enough to absorb run-to-run library
differences across NumPy builds, tight enough that any genuine change
to the numerics fails. Regenerate intentionally with
``python benchmarks/regen_goldens.py`` (see that script's docstring for
when that is and is not appropriate).
"""

import pathlib

import pytest

from repro.analysis.golden import GOLDEN_SCENARIOS, GOLDEN_VERSION, load_golden

pytestmark = pytest.mark.golden

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: relative tolerance on every scalar statistic
RTOL = 1e-9
#: statistics compared against zero get this absolute floor, scaled by
#: the golden field's magnitude range
ATOL_FLOOR = 1e-300


def _compare(got, want, path=""):
    """Recursively compare summary dicts with tight tolerances."""
    if isinstance(want, dict):
        assert isinstance(got, dict), f"{path}: expected dict, got {type(got)}"
        assert set(got) == set(want), (
            f"{path}: keys differ: {sorted(set(got) ^ set(want))}"
        )
        for key in want:
            _compare(got[key], want[key], f"{path}/{key}")
    elif isinstance(want, float):
        assert got == pytest.approx(want, rel=RTOL, abs=ATOL_FLOOR), (
            f"{path}: {got!r} != golden {want!r}"
        )
    else:
        assert got == want, f"{path}: {got!r} != golden {want!r}"


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_scenario_matches_golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden {path}; generate with benchmarks/regen_goldens.py"
    )
    golden = load_golden(path)
    assert golden["version"] == GOLDEN_VERSION, (
        "golden schema version mismatch; regenerate with "
        "benchmarks/regen_goldens.py"
    )
    summary = GOLDEN_SCENARIOS[name]()
    _compare(summary, golden, path=name)


def test_goldens_committed():
    """Every scenario has a committed golden (fast lane guard)."""
    for name in GOLDEN_SCENARIOS:
        assert (GOLDEN_DIR / f"{name}.json").exists(), (
            f"tests/goldens/{name}.json is missing; run "
            "benchmarks/regen_goldens.py and commit the result"
        )
