"""Tests for structured grids."""

import numpy as np
import pytest

from repro.core.grid import Grid


class TestGrid:
    def test_periodic_spacing_excludes_endpoint(self):
        g = Grid((10,), (1.0,), periodic=(True,))
        assert g.spacing(0) == pytest.approx(0.1)
        assert g.coords[0][-1] == pytest.approx(0.9)

    def test_nonperiodic_includes_endpoints(self):
        g = Grid((11,), (1.0,), periodic=(False,))
        assert g.spacing(0) == pytest.approx(0.1)
        assert g.coords[0][-1] == pytest.approx(1.0)

    def test_dimension_limits(self):
        with pytest.raises(ValueError):
            Grid((4, 4, 4, 4), (1, 1, 1, 1))

    def test_lengths_mismatch(self):
        with pytest.raises(ValueError):
            Grid((8, 8), (1.0,))

    def test_stretched_refines_center(self):
        g = Grid((65,), (1.0,), stretch=(3.0,))
        d = np.diff(g.coords[0])
        center = d[len(d) // 2]
        edge = d[0]
        assert center < edge
        assert edge / center == pytest.approx(3.0, rel=0.35)

    def test_stretched_periodic_rejected(self):
        with pytest.raises(ValueError, match="stretched"):
            Grid((16,), (1.0,), periodic=(True,), stretch=(2.0,))

    def test_stretch_spans_full_length(self):
        g = Grid((33,), (2.0,), stretch=(4.0,))
        assert g.coords[0][0] == pytest.approx(0.0, abs=1e-12)
        assert g.coords[0][-1] == pytest.approx(2.0, rel=1e-12)

    def test_spacing_on_stretched_raises(self):
        g = Grid((33,), (1.0,), stretch=(2.0,))
        with pytest.raises(ValueError, match="stretched"):
            g.spacing(0)

    def test_meshgrid_shapes(self):
        g = Grid((4, 6, 8), (1, 2, 3), periodic=(True, True, True))
        mesh = g.meshgrid()
        assert len(mesh) == 3
        assert all(m.shape == (4, 6, 8) for m in mesh)

    def test_n_points(self):
        assert Grid((4, 5), (1, 1), periodic=(True, True)).n_points == 20

    def test_cell_volumes_sum_to_domain(self):
        g = Grid((16, 20), (2.0, 3.0), periodic=(True, False))
        assert g.cell_volumes().sum() == pytest.approx(6.0, rel=1e-12)

    def test_cell_volumes_stretched(self):
        g = Grid((41,), (1.0,), stretch=(3.0,))
        assert g.cell_volumes().sum() == pytest.approx(1.0, rel=1e-12)

    def test_min_spacing(self):
        g = Grid((11,), (1.0,))
        assert g.min_spacing == pytest.approx(0.1)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            Grid((1,), (1.0,))

    def test_repr(self):
        assert "shape=(8,)" in repr(Grid((8,), (1.0,)))
