"""Implicit stiff kinetics and Strang splitting: order and invariants.

Three layers of evidence that the implicit chemistry path is correct:

* **0-D order of accuracy** — both per-cell integrators (Rosenbrock-W
  and BDF2) converge at second order against a tight
  :func:`scipy.integrate.solve_ivp` reference on post-front ignition
  windows for H2/air and two-step methane.  The windows are chosen past
  the thin ignition front (where any one-step error-vs-dt study is
  meaningless) but before equilibrium (where every method is exact).
* **1-D Strang order** — the symmetric split
  ``chem(dt/2) -> transport(dt) -> chem(dt/2)`` on the full solver
  converges at second order in the *outer* dt on a reacting 1-D
  problem.  The study pins the substep count per half-step
  (:attr:`~repro.chemistry.implicit.ImplicitChemistry.fixed_substeps`)
  so the measured error scales with dt rather than through the adaptive
  controller's discrete accept/reject decisions, which impose a
  dt-independent error floor.
* **Invariants** (Hypothesis) — determinism, batch-shape/order bitwise
  independence, unit mass-fraction sums, and elemental conservation
  hold on randomized flame-like states for both methods.

Plus the split-vs-unsplit contract: below the explicit stability limit
the Strang solution must agree with the explicit-chemistry solution to
golden tolerance, and the serial/parallel + load-balancing equivalences
of the explicit path carry over to the Strang path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hst
from scipy.integrate import solve_ivp

from repro.chemistry import ImplicitChemistry
from repro.core import Grid, S3DSolver, SolverConfig, State
from repro.core.config import periodic_boundaries
from repro.transport import ConstantLewisTransport
from repro.util.constants import P_ATM

pytestmark = pytest.mark.implicit

#: acceptance window for a measured convergence order of a 2nd-order
#: method — wide enough for pre-asymptotic drift on the coarsest pair
ORDER_LO, ORDER_HI = 1.7, 2.7


# ----------------------------------------------------------------------
# 0-D order of accuracy vs a tight reference
# ----------------------------------------------------------------------

def _reference_window(mech, T0, ymap, t_skip, t_win):
    """Integrate past the ignition front, then build a tight reference.

    Returns ``(z_start, z_ref)`` where ``z = [Y_1..Y_Ns, T]``: the state
    at ``t_skip`` and the state one window ``t_win`` later, both from
    LSODA at rtol 1e-11/1e-12 on the same source term the implicit
    integrators use (so the comparison isolates time-integration error).
    """
    ns = mech.n_species
    stj = ImplicitChemistry(mech, closure="constant-pressure").stj
    p = np.array([P_ATM])

    def f_ode(t, zf):
        z = zf.reshape(ns + 1, 1)
        return stj.source(z[ns], z[:ns], p=p).ravel()

    Y0 = mech.mass_fractions_from(ymap)
    z0 = np.concatenate([Y0 / Y0.sum(), [T0]])
    pre = solve_ivp(f_ode, (0.0, t_skip), z0, method="LSODA",
                    rtol=1e-11, atol=1e-14)
    assert pre.success
    zs = pre.y[:, -1]
    ref = solve_ivp(f_ode, (0.0, t_win), zs, method="LSODA",
                    rtol=1e-12, atol=1e-15)
    assert ref.success
    return zs, ref.y[:, -1]


def _zero_d_errors(mech, method, zs, zref, t_win, steps):
    """Fixed-step window errors in a scaled RMS norm, one per count."""
    ns = mech.n_species
    integ = ImplicitChemistry(mech, closure="constant-pressure",
                              method=method)
    w = np.maximum(np.abs(zref), 1e-6)
    w[-1] = np.abs(zref[-1])
    errs = []
    for k in steps:
        T1, Y1, _ = integ.advance(zs[-1:].copy(), zs[:ns][:, None].copy(),
                                  t_win, p=P_ATM, fixed_steps=k)
        z1 = np.concatenate([Y1[:, 0], T1])
        errs.append(float(np.sqrt((((z1 - zref) / w) ** 2).mean())))
    return errs


def _orders(errs):
    return [np.log2(errs[i] / errs[i + 1]) for i in range(len(errs) - 1)]


class TestZeroDOrder:
    """rosw2 and bdf2 are 2nd order on both mechanisms."""

    STEPS = [10, 20, 40, 80, 160]

    @pytest.fixture(scope="class")
    def h2_window(self, h2_mech):
        # 1200 K lean H2/air: the front sits near 5e-5 s, so start the
        # window at 6e-5 s (post-front heat release, ~2200 -> 2460 K)
        return _reference_window(
            h2_mech, 1200.0,
            {"H2": 0.028522, "O2": 0.226377, "N2": 0.745101},
            6e-5, 2e-5)

    @pytest.fixture(scope="class")
    def ch4_window(self, ch4_mech):
        # 1800 K two-step methane: much faster front; the window spans
        # the CO burnout shoulder (~2130 -> 2880 K)
        return _reference_window(
            ch4_mech, 1800.0,
            {"CH4": 0.055, "O2": 0.22, "N2": 0.725},
            2.5e-6, 1.5e-6)

    @pytest.mark.parametrize("method", ["rosw2", "bdf2"])
    def test_h2(self, h2_mech, h2_window, method):
        zs, zref = h2_window
        errs = _zero_d_errors(h2_mech, method, zs, zref, 2e-5, self.STEPS)
        assert all(a > b for a, b in zip(errs, errs[1:]))
        orders = _orders(errs)
        assert all(ORDER_LO < o < ORDER_HI for o in orders), orders
        # asymptotic pair must be clean 2nd order
        assert 1.9 < orders[-1] < 2.1, orders

    @pytest.mark.parametrize("method", ["rosw2", "bdf2"])
    def test_ch4(self, ch4_mech, ch4_window, method):
        zs, zref = ch4_window
        errs = _zero_d_errors(ch4_mech, method, zs, zref, 1.5e-6, self.STEPS)
        assert all(a > b for a, b in zip(errs, errs[1:]))
        orders = _orders(errs)
        assert all(ORDER_LO < o < ORDER_HI for o in orders), orders
        assert 1.8 < orders[-1] < 2.2, orders


# ----------------------------------------------------------------------
# 1-D Strang splitting: 2nd order in the outer dt
# ----------------------------------------------------------------------

def _hot_spot_solver(mech, chemistry_mode, fixed_substeps=None):
    """32-cell periodic 1-D H2/air domain with a Gaussian hot spot."""
    grid = Grid((32,), (2e-3,), periodic=(True,))
    x = grid.coords[0]
    T = 1000.0 + 400.0 * np.exp(-((x - 1e-3) ** 2) / (2 * (2.5e-4) ** 2))
    Y = mech.mass_fractions_from({"H2": 0.0285, "O2": 0.2264, "N2": 0.7451})
    Yf = Y[:, None] * np.ones((1, 32))
    rho = mech.density(P_ATM, T, Yf)
    state = State.from_primitive(mech, grid, rho, [0.5], T, Yf)
    cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=1e-8,
                       filter_interval=0, scheme="ck45",
                       chemistry_mode=chemistry_mode)
    solver = S3DSolver(state, cfg, transport=ConstantLewisTransport(mech),
                       reacting=True)
    if fixed_substeps is not None:
        solver._chem.fixed_substeps = fixed_substeps
    return solver


def _run_strang(mech, dt, nsteps, fixed_substeps):
    solver = _hot_spot_solver(mech, "strang", fixed_substeps)
    for _ in range(nsteps):
        solver.step(dt)
    return solver.state.u


class TestStrangOrder1D:
    @pytest.mark.slow
    def test_second_order_in_outer_dt(self, h2_mech):
        # fixed substeps per half-step: the split error under study is
        # the O(dt^2) non-commutator term, not the inner solver's
        # adaptive-controller hysteresis (which has a dt-independent
        # floor that would flatten the convergence curve)
        dt0, n0 = 4e-8, 32
        u_ref = _run_strang(h2_mech, dt0 / 16, n0 * 16, fixed_substeps=4)
        scale = np.abs(u_ref).reshape(u_ref.shape[0], -1).max(axis=1)
        errs = []
        for refine in (1, 2, 4):
            u = _run_strang(h2_mech, dt0 / refine, n0 * refine,
                            fixed_substeps=4)
            diff = np.abs(u - u_ref).reshape(u.shape[0], -1).max(axis=1)
            errs.append(float((diff / np.maximum(scale, 1e-300)).max()))
        assert all(a > b for a, b in zip(errs, errs[1:]))
        orders = _orders(errs)
        assert all(1.8 < o < 2.4 for o in orders), (errs, orders)


class TestStrangMatchesExplicit:
    def test_golden_tolerance_below_stability_limit(self, h2_mech):
        # dt = 2e-8 is far below the chemical stability limit of this
        # mild initial state (max Gershgorin rate ~1.3e4 /s, so
        # dt_chem ~ 7e-5 s): both paths resolve the same dynamics and
        # must agree to a golden tolerance, not just qualitatively
        dt, nsteps = 2e-8, 10
        exp = _hot_spot_solver(h2_mech, "explicit")
        spl = _hot_spot_solver(h2_mech, "strang")
        for _ in range(nsteps):
            exp.step(dt)
            spl.step(dt)
        _, _, T_e, _, Y_e, _ = exp.state.primitives()
        _, _, T_s, _, Y_s, _ = spl.state.primitives()
        assert np.abs(T_s - T_e).max() < 1e-5  # Kelvin
        assert np.abs(Y_s - Y_e).max() < 1e-7


# ----------------------------------------------------------------------
# invariants on randomized flame-like states
# ----------------------------------------------------------------------

def _flame_states(mech, seed, n_cells):
    """Mild flame-like batch: major species plus trace radicals."""
    rng = np.random.default_rng(seed)
    ns = mech.n_species
    base = mech.mass_fractions_from({"H2": 0.0285, "O2": 0.2264,
                                     "N2": 0.7451})
    Y = base[:, None] * rng.uniform(0.8, 1.2, (ns, n_cells))
    Y += rng.uniform(0.0, 1e-6, (ns, n_cells))  # trace radicals
    Y /= Y.sum(axis=0)
    T = rng.uniform(700.0, 1600.0, n_cells)
    return T, Y


_seeds = hst.integers(min_value=0, max_value=2**31 - 1)
_methods = hst.sampled_from(["rosw2", "bdf2"])
_settings = settings(max_examples=8, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestInvariants:
    @given(seed=_seeds, method=_methods)
    @_settings
    def test_deterministic(self, h2_mech, seed, method):
        T, Y = _flame_states(h2_mech, seed, 12)
        integ = ImplicitChemistry(h2_mech, closure="constant-pressure",
                                  method=method)
        T1, Y1, _ = integ.advance(T.copy(), Y.copy(), 2e-8, p=P_ATM)
        T2, Y2, _ = integ.advance(T.copy(), Y.copy(), 2e-8, p=P_ATM)
        np.testing.assert_array_equal(T1, T2)
        np.testing.assert_array_equal(Y1, Y2)

    @given(seed=_seeds, method=_methods)
    @_settings
    def test_batch_order_independent(self, h2_mech, seed, method):
        # permuting the batch permutes the answer bitwise, and a
        # single-cell solve reproduces its batched counterpart bitwise:
        # no cross-cell coupling leaks through the batched linear algebra
        T, Y = _flame_states(h2_mech, seed, 12)
        integ = ImplicitChemistry(h2_mech, closure="constant-pressure",
                                  method=method)
        T1, Y1, _ = integ.advance(T.copy(), Y.copy(), 2e-8, p=P_ATM)
        perm = np.random.default_rng(seed + 1).permutation(12)
        T1p, Y1p, _ = integ.advance(T[perm].copy(), Y[:, perm].copy(),
                                    2e-8, p=P_ATM)
        np.testing.assert_array_equal(T1p, T1[perm])
        np.testing.assert_array_equal(Y1p, Y1[:, perm])
        c = int(perm[0])
        T1s, Y1s, _ = integ.advance(T[c:c + 1].copy(), Y[:, c:c + 1].copy(),
                                    2e-8, p=P_ATM)
        np.testing.assert_array_equal(T1s, T1[c:c + 1])
        np.testing.assert_array_equal(Y1s, Y1[:, c:c + 1])

    @given(seed=_seeds, method=_methods)
    @_settings
    def test_mass_fraction_sum_preserved(self, h2_mech, seed, method):
        T, Y = _flame_states(h2_mech, seed, 16)
        integ = ImplicitChemistry(h2_mech, closure="constant-pressure",
                                  method=method)
        _, Y1, _ = integ.advance(T, Y, 2e-8, p=P_ATM)
        assert np.abs(Y1.sum(axis=0) - 1.0).max() < 1e-12

    @given(seed=_seeds, method=_methods)
    @_settings
    def test_elements_conserved(self, h2_mech, seed, method):
        T, Y = _flame_states(h2_mech, seed, 16)
        integ = ImplicitChemistry(h2_mech, closure="constant-pressure",
                                  method=method)
        _, Y1, _ = integ.advance(T, Y, 2e-8, p=P_ATM)
        z0 = h2_mech.element_mass_fractions(Y)
        z1 = h2_mech.element_mass_fractions(Y1)
        assert np.abs(z1 - z0).max() < 1e-12


# ----------------------------------------------------------------------
# parallel Strang path: serial equivalence and load-balancer invariance
# ----------------------------------------------------------------------

@pytest.mark.chemlb
class TestParallelStrang:
    """Strang inherits the explicit path's parallel contracts."""

    NSTEPS = 3
    DT = 1e-7

    @pytest.fixture(scope="class")
    def setup_2d(self, h2_mech):
        mech = h2_mech
        grid = Grid((24, 24), (2e-3, 2e-3), periodic=(True, True))
        xx, yy = grid.meshgrid()
        T = 900.0 + 600.0 * np.exp(
            -((xx - 1e-3) ** 2 + (yy - 1e-3) ** 2) / (2 * (3e-4) ** 2))
        Y = mech.mass_fractions_from({"H2": 0.0285, "O2": 0.2264,
                                      "N2": 0.7451})
        Yf = Y[:, None, None] * np.ones((1, 24, 24))
        rho = mech.density(P_ATM, T, Yf)
        state = State.from_primitive(mech, grid, rho, [1.0, 0.5], T, Yf)
        return mech, grid, state, ConstantLewisTransport(mech)

    def _run_parallel(self, setup, policy):
        from repro.parallel import CartesianDecomposition, SimMPI
        from repro.parallel.solver import ParallelPeriodicSolver

        mech, grid, state, tr = setup
        world = SimMPI(4)
        decomp = CartesianDecomposition((24, 24), (2, 2),
                                        periodic=(True, True))
        par = ParallelPeriodicSolver(mech, grid, decomp, world,
                                     transport=tr, reacting=True,
                                     scheme="ck45", filter_alpha=0.2,
                                     chemistry_mode="strang",
                                     chem_load_balance=policy,
                                     chemlb_threshold=1.02)
        par.set_state(state.u)
        for _ in range(self.NSTEPS):
            par.step(self.DT)
        return par.gather_state(), par

    @pytest.fixture(scope="class")
    def parallel_off(self, setup_2d):
        return self._run_parallel(setup_2d, "off")

    def test_matches_serial(self, setup_2d, parallel_off):
        # same tolerance contract as the explicit-path equivalence test:
        # the rank-local RK loops do not replay serial arithmetic
        # bit-for-bit, but agree to near machine precision
        mech, grid, state, tr = setup_2d
        cfg = SolverConfig(boundaries=periodic_boundaries(2), dt=self.DT,
                           filter_interval=1, filter_alpha=0.2,
                           scheme="ck45", chemistry_mode="strang")
        serial = S3DSolver(state.copy(), cfg, transport=tr, reacting=True)
        for _ in range(self.NSTEPS):
            serial.step()
        ref = serial.state.u
        u_par, _ = parallel_off
        scale = np.maximum(
            np.abs(ref).reshape(ref.shape[0], -1).max(axis=1), 1e-300)
        rel = (np.abs(u_par - ref).reshape(ref.shape[0], -1).max(axis=1)
               / scale)
        assert rel.max() < 1e-10

    @pytest.mark.parametrize("policy", ["greedy", "pairwise-diffusion"])
    def test_load_balancing_is_bitwise_invisible(self, setup_2d,
                                                 parallel_off, policy):
        # shipping implicit solves to other ranks must not change a
        # single bit of the answer — only where the work runs
        u_off, _ = parallel_off
        u_lb, par = self._run_parallel(setup_2d, policy)
        np.testing.assert_array_equal(u_lb, u_off)
        # and work actually moved: the hot spot makes rank loads uneven
        assert par.chemlb.last_plan is not None
        assert par.chemlb._work is not None
