"""Tests for in-situ visualization hooks (§8.3) and remaining small
public-API surfaces."""

import numpy as np
import pytest

from repro.core import Grid, SolverConfig, S3DSolver, ic
from repro.core.config import periodic_boundaries
from repro.viz.insitu import InSituRenderer
from repro.util.constants import P_ATM


@pytest.fixture
def small_solver(air_mech, air_y):
    grid = Grid((24, 16), (1e-2, 1e-2), periodic=(True, True))
    state = ic.pressure_pulse(air_mech, grid, p0=P_ATM, T0=300.0, Y=air_y,
                              amplitude=1e-3)
    cfg = SolverConfig(boundaries=periodic_boundaries(2), cfl=0.5)
    return S3DSolver(state, cfg, transport=None, reacting=False)


class TestInSitu:
    def test_hook_produces_images(self, small_solver):
        renderer = InSituRenderer(fields=("T", "O2"))
        small_solver.insitu_hook = renderer
        small_solver.run(4, insitu_interval=2)
        assert len(renderer.images) == 2
        step, t, image = renderer.images[0]
        assert step == 2
        assert image.shape == (24, 16, 3)

    def test_overhead_accounting(self, small_solver):
        renderer = InSituRenderer(fields=("T",), max_overhead=1e-12)
        small_solver.insitu_hook = renderer
        small_solver.run(2, insitu_interval=1)
        ratio = renderer.check_overhead(small_solver)
        assert ratio > 0
        assert renderer.overhead_warnings  # impossible ceiling -> flagged

    def test_species_selector(self, small_solver):
        renderer = InSituRenderer(fields=("T", "Y:N2"))
        small_solver.insitu_hook = renderer
        small_solver.run(1, insitu_interval=1)
        assert len(renderer.images) == 1

    def test_unknown_field(self, small_solver):
        renderer = InSituRenderer(fields=("vorticity",))
        small_solver.insitu_hook = renderer
        with pytest.raises(KeyError):
            small_solver.run(1, insitu_interval=1)


class TestSmallSurfaces:
    def test_flame_thickness_field(self):
        from repro.analysis.flame import flame_thickness_field

        grid = Grid((32, 32), (1.0, 1.0), periodic=(True, True))
        xx, _ = grid.meshgrid()
        c = 0.5 * (1 + np.sin(2 * np.pi * xx))
        th = flame_thickness_field(c, grid)
        assert th.shape == (32, 32)
        assert np.all(th > 0)
        # thinnest where the gradient is steepest
        g_max = np.pi  # max |dc/dx|
        assert th.min() == pytest.approx(1.0 / g_max, rel=0.01)

    def test_parser_ford_keyword(self):
        from repro.chemistry.parser import parse_mechanism

        text = (
            "SPECIES\nCH4 O2 CO2 H2O N2\nEND\n"
            "REACTIONS\n"
            "CH4+2O2=>CO2+2H2O  1.0E10 0.0 30000.\n"
            "    FORD /CH4 0.5/\n"
            "    FORD /O2 1.25/\n"
            "END\n"
        )
        mech = parse_mechanism(text)
        rxn = mech.reactions[0]
        assert rxn.orders == (("CH4", 0.5), ("O2", 1.25))
        # unit conversion uses the FORD total order (1.75)
        assert rxn.rate.A == pytest.approx(1.0e10 * (1e-6) ** 0.75)

    def test_function_actor(self):
        from repro.workflow.actor import FunctionActor, Token

        actor = FunctionActor("inc", lambda x: x + 1)
        out = actor.fire({"in": Token(41)})
        assert out["out"].value == 42
        assert out["out"].provenance[0][0] == "inc"
