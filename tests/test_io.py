"""Tests for the parallel I/O substrate: functional byte correctness of
every write path, lock semantics, caching/write-behind invariants."""

import numpy as np
import pytest

from repro.io import (
    BlockLayout,
    MPIIOCache,
    S3DCheckpoint,
    SimFileSystem,
    TwoStageWriteBehind,
    collective_write,
    fortran_write_checkpoint,
    gpfs,
    independent_write,
    lustre,
)
from repro.io.filesystem import FSConfig, WriteRequest
from repro.io.iomodel import run_io_model


def small_fs(lock_unit=256):
    return SimFileSystem(FSConfig(name="test", lock_unit=lock_unit, n_servers=4))


class TestFileSystem:
    def test_write_read_roundtrip(self):
        fs = small_fs()
        fs.open("f")
        fs.phase_write([WriteRequest(0, "f", 10, b"hello")])
        assert fs.read("f", 10, 5) == b"hello"
        assert fs.read("f", 0, 10) == b"\x00" * 10

    def test_overlapping_writes_last_phase_wins_within_order(self):
        fs = small_fs()
        fs.open("f")
        fs.phase_write([WriteRequest(0, "f", 0, b"aaaa")])
        fs.phase_write([WriteRequest(1, "f", 2, b"bb")])
        assert fs.file_bytes("f") == b"aabb"

    def test_conflict_detection(self):
        """Two clients in the same lock unit conflict even when their
        bytes are disjoint — the §5 false-sharing mechanism."""
        fs = small_fs(lock_unit=256)
        fs.open("f")
        fs.phase_write([
            WriteRequest(0, "f", 0, b"x" * 64),
            WriteRequest(1, "f", 128, b"y" * 64),
        ])
        assert fs.conflict_units == 1
        assert fs.time.lock_wait > 0

    def test_aligned_writes_no_conflict(self):
        fs = small_fs(lock_unit=256)
        fs.open("f")
        fs.phase_write([
            WriteRequest(0, "f", 0, b"x" * 256),
            WriteRequest(1, "f", 256, b"y" * 256),
        ])
        assert fs.conflict_units == 0
        assert fs.time.lock_wait == 0.0

    def test_open_costs_accumulate(self):
        fs = SimFileSystem(gpfs())
        t0 = fs.time.open
        fs.open("a")
        fs.open("b")
        assert fs.time.open > t0

    def test_gpfs_creation_superlinear(self):
        """Marginal creation cost grows on GPFS, flat on Lustre."""
        g = SimFileSystem(gpfs())
        costs = []
        for i in range(200):
            before = g.time.open
            g.open(f"f{i}")
            costs.append(g.time.open - before)
        assert costs[-1] > 2 * costs[0]
        l = SimFileSystem(lustre())
        lcosts = []
        for i in range(200):
            before = l.time.open
            l.open(f"f{i}")
            lcosts.append(l.time.open - before)
        assert lcosts[-1] == pytest.approx(lcosts[0])

    def test_meta_path_matches_functional_costs(self):
        """phase_write and phase_write_meta charge identical time for
        the same request set."""
        reqs = [
            WriteRequest(0, "f", 0, b"x" * 300),
            WriteRequest(1, "f", 100, b"y" * 500),
            WriteRequest(2, "f", 900, b"z" * 100),
        ]
        fs_a = small_fs()
        fs_a.open("f")
        t_func = fs_a.phase_write(reqs)
        fs_b = small_fs()
        fs_b.open("f")
        t_meta = fs_b.phase_write_meta(
            "f", [r.client for r in reqs], [r.offset for r in reqs],
            [len(r.data) for r in reqs],
        )
        assert t_meta == pytest.approx(t_func, rel=1e-12)
        assert fs_b.conflict_units == fs_a.conflict_units

    def test_missing_file_meta(self):
        fs = small_fs()
        with pytest.raises(FileNotFoundError):
            fs.phase_write_meta("nope", [0], [0], [10])


class TestBlockLayout:
    def test_runs_cover_file_exactly(self):
        layout = BlockLayout((4, 4, 2), (2, 2, 1), fourth_dim=3)
        seen = np.zeros(layout.total_bytes // 8, dtype=int)
        for rank in range(layout.n_ranks):
            for off, x0, y, z, m, lx in layout.local_runs(rank):
                e = off // 8
                seen[e : e + lx] += 1
        assert np.all(seen == 1)

    def test_pack_matches_requests(self):
        layout = BlockLayout((4, 6, 2), (2, 3, 1), fourth_dim=2)
        rng = np.random.default_rng(0)
        arr = rng.random((4, 6, 2, 2))
        oracle = layout.pack_global(arr)
        buf = bytearray(len(oracle))
        for rank in range(layout.n_ranks):
            block = layout.local_block(arr, rank)
            for off, data in layout.rank_requests(rank, block):
                buf[off : off + len(data)] = data
        assert bytes(buf) == oracle

    def test_run_offsets_match_local_runs(self):
        layout = BlockLayout((6, 4, 4), (2, 2, 2), fourth_dim=2)
        for rank in (0, 3, 7):
            offs, rl = layout.run_offsets(rank)
            runs = layout.local_runs(rank)
            np.testing.assert_array_equal(
                np.sort(offs), np.sort([r[0] for r in runs])
            )
            assert rl == runs[0][5] * 8

    def test_shape_mismatch_rejected(self):
        layout = BlockLayout((4, 4, 4), (2, 2, 2))
        with pytest.raises(ValueError):
            layout.rank_requests(0, np.zeros((3, 2, 2, 1)))


class TestWritePathCorrectness:
    """Every write path produces byte-identical canonical files."""

    @pytest.fixture(scope="class")
    def checkpoint(self):
        return S3DCheckpoint(proc_shape=(2, 2, 1), block=(4, 4, 4))

    @pytest.fixture(scope="class")
    def arrays(self, checkpoint):
        return checkpoint.synthetic_arrays(seed=1)

    @pytest.mark.parametrize(
        "method", ["fortran", "independent", "collective", "caching", "writebehind"]
    )
    def test_bytes_verified(self, checkpoint, arrays, method):
        fs = SimFileSystem(lustre())
        checkpoint.write_checkpoint(fs, method, arrays, 0)
        assert checkpoint.verify(fs, method, arrays, 0)

    def test_unknown_method(self, checkpoint, arrays):
        fs = SimFileSystem(lustre())
        with pytest.raises(ValueError):
            checkpoint.write_checkpoint(fs, "mystery", arrays, 0)

    def test_independent_conflicts_heavily(self, checkpoint, arrays):
        # a lock unit smaller than the file so alignment effects show
        cfg = FSConfig(name="t", lock_unit=512, n_servers=4)
        fs_i = SimFileSystem(cfg)
        independent_write(fs_i, checkpoint.layouts[0], arrays[0], "shared")
        fs_c = SimFileSystem(cfg)
        collective_write(fs_c, checkpoint.layouts[0], arrays[0], "shared")
        assert fs_i.conflict_units > 5 * max(fs_c.conflict_units, 1)


class TestMPIIOCache:
    def test_single_copy_invariant(self):
        fs = small_fs(lock_unit=256)
        cache = MPIIOCache(fs, "f", n_ranks=4, page_size=256)
        rng = np.random.default_rng(2)
        for rank in range(4):
            cache.write(rank, rank * 100, bytes(rng.bytes(150)))
        for page in cache.page_owner:
            assert cache.cached_copies(page) <= 1
        cache.close()

    def test_bytes_land_after_close(self):
        fs = small_fs(lock_unit=128)
        cache = MPIIOCache(fs, "f", n_ranks=2, page_size=128)
        cache.write(0, 0, b"a" * 200)
        cache.write(1, 200, b"b" * 56)
        cache.close()
        assert fs.file_bytes("f") == b"a" * 200 + b"b" * 56

    def test_remote_forwarding_counted(self):
        fs = small_fs(lock_unit=128)
        cache = MPIIOCache(fs, "f", n_ranks=2, page_size=128)
        cache.write(0, 0, b"x" * 128)   # rank 0 owns page 0
        cache.write(1, 64, b"y" * 32)   # rank 1 forwards into page 0
        assert cache.remote_forwards == 1
        cache.close()
        assert fs.file_bytes("f")[64:96] == b"y" * 32

    def test_eviction_under_pressure(self):
        fs = small_fs(lock_unit=64)
        cache = MPIIOCache(fs, "f", n_ranks=1, page_size=64, cache_bound=128)
        cache.write(0, 0, b"a" * 64)
        cache.write(0, 64, b"b" * 64)
        cache.write(0, 128, b"c" * 64)  # exceeds 2-page bound -> evict
        assert cache.evictions >= 1
        cache.close()
        assert fs.file_bytes("f") == b"a" * 64 + b"b" * 64 + b"c" * 64

    def test_flushes_are_aligned(self):
        """All FS requests from the cache start on page boundaries."""
        fs = small_fs(lock_unit=256)
        cache = MPIIOCache(fs, "f", n_ranks=3, page_size=256)
        rng = np.random.default_rng(4)
        flush = []
        for rank in range(3):
            cache.write(rank, 13 + rank * 333, bytes(rng.bytes(300)),
                        flush_requests=flush)
        reqs = list(flush)
        cache_close_reqs = []
        cache.close()
        for r in reqs:
            # dirty high-water flushes start within their page
            assert r.offset // 256 * 256 <= r.offset < r.offset + len(r.data) <= (r.offset // 256 + 1) * 256 + 256


class TestTwoStageWriteBehind:
    def test_bytes_land(self):
        fs = small_fs(lock_unit=128)
        wb = TwoStageWriteBehind(fs, "f", n_ranks=3, page_size=128,
                                 subbuffer_size=64)
        payload = {}
        rng = np.random.default_rng(5)
        pos = 0
        for rank in range(3):
            data = bytes(rng.bytes(200))
            wb.write(rank, pos, data)
            payload[pos] = data
            pos += 200
        wb.close()
        out = fs.file_bytes("f")
        for off, data in payload.items():
            assert out[off : off + len(data)] == data

    def test_round_robin_ownership(self):
        fs = small_fs()
        wb = TwoStageWriteBehind(fs, "f", n_ranks=4)
        assert [wb.page_owner(p) for p in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_local_writes_skip_network(self):
        fs = small_fs(lock_unit=128)
        wb = TwoStageWriteBehind(fs, "f", n_ranks=2, page_size=128)
        wb.write(0, 0, b"z" * 128)  # page 0 owned by rank 0 itself
        assert wb.stage1_flushes == 0
        wb.close()

    def test_subbuffer_flush_threshold(self):
        fs = small_fs(lock_unit=128)
        wb = TwoStageWriteBehind(fs, "f", n_ranks=2, page_size=128,
                                 subbuffer_size=96)
        wb.write(0, 128, b"a" * 64)   # page 1 -> remote, buffered
        assert wb.stage1_flushes == 0
        wb.write(0, 384, b"b" * 64)   # page 3 -> remote, exceeds 96
        assert wb.stage1_flushes == 1


class TestIOModelShapes:
    """Fig 9 orderings at a reduced scale (fast smoke checks; the
    benchmark reproduces the full figure)."""

    def test_lustre_ordering(self):
        res = {
            m: run_io_model(lambda: SimFileSystem(lustre()), m, (2, 2, 2),
                            n_checkpoints=3, block=(20, 20, 20))
            for m in ("fortran", "independent", "collective", "caching",
                      "writebehind")
        }
        bw = {m: r["bandwidth"] for m, r in res.items()}
        assert bw["fortran"] > bw["writebehind"] > bw["caching"] > bw["collective"]
        # independent is catastrophically slow in absolute terms
        assert bw["independent"] < 0.4 * bw["collective"]
        assert bw["independent"] < 20e6

    def test_gpfs_ordering(self):
        res = {
            m: run_io_model(lambda: SimFileSystem(gpfs()), m, (2, 2, 2),
                            n_checkpoints=3, block=(20, 20, 20))
            for m in ("independent", "collective", "caching", "writebehind")
        }
        bw = {m: r["bandwidth"] for m, r in res.items()}
        assert bw["caching"] > bw["collective"] > bw["writebehind"] > bw["independent"]

    def test_gpfs_opens_dwarf_lustre(self):
        g = run_io_model(lambda: SimFileSystem(gpfs()), "fortran", (4, 2, 2),
                         n_checkpoints=5, block=(10, 10, 10))
        l = run_io_model(lambda: SimFileSystem(lustre()), "fortran", (4, 2, 2),
                         n_checkpoints=5, block=(10, 10, 10))
        assert g["open_time"] > 3 * l["open_time"]
