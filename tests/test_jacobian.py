"""Analytical source-term Jacobian: FD exactness and sparsity pins.

The battery the implicit integrators stand on: for every mechanism and
both thermodynamic closures, the analytical Jacobian of
:class:`repro.chemistry.jacobian.SourceTermJacobian` must match a
central finite difference of the source term to relative 1e-6 on random
states spanning both NASA-7 polynomial branches, and every numerically
nonzero entry must lie inside the declared CSR pattern (no silent dense
fill-in). A synthetic four-parameter Troe falloff reaction covers the
broadening-factor derivatives the built-in mechanisms (constant-Fcent
falloff) don't exercise.
"""

import numpy as np
import pytest

from repro.chemistry import Mechanism, SourceTermJacobian
from repro.chemistry.kinetics import Arrhenius, Falloff, Reaction, ThirdBody
from repro.chemistry.mechanisms.builders import make_species
from repro.util.constants import P_ATM

pytestmark = pytest.mark.jacobian

#: max |J_analytical - J_fd| / max(|J_analytical|) per cell
FD_RTOL = 1e-6

#: relative central-difference step — large enough that the O(h^2)
#: truncation error and the O(eps/h) roundoff error are both well below
#: FD_RTOL for these well-scaled states (smaller steps go roundoff-bound)
FD_REL_STEP = 1e-5


def random_states(mech, rng, n_cells, t_lo=320.0, t_hi=2800.0):
    """Strictly positive compositions, temperatures on both NASA branches.

    Half the cells land below every species' ``t_mid`` breakpoint and
    half above; none within 2 K of a breakpoint, where the two
    polynomial branches would straddle the FD stencil.
    """
    ns = mech.n_species
    mids = sorted({f.t_mid for f in (sp.thermo for sp in mech.species)})
    lo_cap = min(mids) - 2.0
    hi_floor = max(mids) + 2.0
    n_lo = n_cells // 2
    T = np.empty(n_cells)
    T[:n_lo] = rng.uniform(t_lo, lo_cap, n_lo)
    T[n_lo:] = rng.uniform(hi_floor, t_hi, n_cells - n_lo)
    Y = rng.uniform(0.05, 1.0, (ns, n_cells))
    Y /= Y.sum(axis=0)
    return T, Y


def fd_jacobian(stj, T, Y, rel=FD_REL_STEP, **kw):
    """Central-difference d(f)/d(Y, T), shape (N, n, n).

    Steps are made exactly representable (h = (z + h) - z) so the
    difference quotient divides by the perturbation actually applied.
    """
    ns, n = stj.ns, stj.n
    N = T.shape[0]
    z0 = np.concatenate([Y, T[None]], axis=0)
    floors = np.concatenate([np.full(ns, 1e-3), [1.0]])
    jac = np.empty((N, n, n))
    for j in range(n):
        h = rel * np.maximum(np.abs(z0[j]), floors[j])
        zp = z0.copy()
        zp[j] = z0[j] + h
        zm = z0.copy()
        zm[j] = z0[j] - h
        dz = zp[j] - zm[j]  # exactly representable spacing
        fp = stj.source(zp[ns], zp[:ns], **kw)
        fm = stj.source(zm[ns], zm[:ns], **kw)
        jac[:, :, j] = ((fp - fm) / dz[None]).T
    return jac


def max_rel_error(j_an, j_fd):
    """Per-cell matrix-relative FD mismatch, maxed over the batch."""
    scale = np.abs(j_an).reshape(j_an.shape[0], -1).max(axis=1)
    diff = np.abs(j_an - j_fd).reshape(j_an.shape[0], -1).max(axis=1)
    return float((diff / np.maximum(scale, 1.0)).max())


def closure_kwargs(mode, mech, T, Y, rng):
    if mode == "constant-pressure":
        return {"p": np.full(T.shape, P_ATM)}
    return {"rho": np.asarray(mech.density(P_ATM, T, Y))}


@pytest.fixture(params=["constant-pressure", "constant-volume"])
def mode(request):
    return request.param


class TestFiniteDifferenceExactness:
    def test_h2(self, h2_mech, rng, mode):
        stj = SourceTermJacobian(h2_mech, mode=mode)
        T, Y = random_states(h2_mech, rng, 24)
        kw = closure_kwargs(mode, h2_mech, T, Y, rng)
        j_an = stj.jacobian(T, Y, **kw)
        j_fd = fd_jacobian(stj, T, Y, **kw)
        assert max_rel_error(j_an, j_fd) < FD_RTOL

    def test_ch4_twostep(self, ch4_mech, rng, mode):
        stj = SourceTermJacobian(ch4_mech, mode=mode)
        T, Y = random_states(ch4_mech, rng, 24)
        kw = closure_kwargs(mode, ch4_mech, T, Y, rng)
        j_an = stj.jacobian(T, Y, **kw)
        j_fd = fd_jacobian(stj, T, Y, **kw)
        assert max_rel_error(j_an, j_fd) < FD_RTOL

    def test_fused_source_matches_plain_source(self, h2_mech, rng, mode):
        # the fused path accumulates wdot per reaction (alongside its
        # derivatives) rather than through KineticsEvaluator, so the two
        # agree to rounding, not bit-for-bit
        stj = SourceTermJacobian(h2_mech, mode=mode)
        T, Y = random_states(h2_mech, rng, 12)
        kw = closure_kwargs(mode, h2_mech, T, Y, rng)
        f_fused, _ = stj.source_and_jacobian(T, Y, **kw)
        f_plain = stj.source(T, Y, **kw)
        scale = np.maximum(np.abs(f_plain).max(axis=1, keepdims=True), 1.0)
        assert np.abs(f_fused - f_plain).max() <= (1e-12 * scale).max()
        assert (np.abs(f_fused - f_plain) <= 1e-12 * scale).all()


class TestTroeFalloff:
    """Four-parameter Troe broadening, absent from the built-ins."""

    @pytest.fixture(scope="class")
    def troe_mech(self):
        names = ["H", "O2", "HO2", "H2O", "N2"]
        species = [make_species(n) for n in names]
        rxns = [
            Reaction(
                (("H", 1), ("O2", 1)),
                (("HO2", 1),),
                Arrhenius(A=1.475e6, n=0.60, Ea=0.0),
                third_body=ThirdBody((("H2O", 11.0), ("O2", 0.78))),
                falloff=Falloff(
                    low=Arrhenius(A=6.366e8, n=-1.72, Ea=2195.8),
                    troe=(0.5, 100.0, 2000.0, 5000.0),
                ),
            ),
            # a plain channel so HO2 consumption couples rows
            Reaction(
                (("HO2", 1), ("H", 1)),
                (("O2", 1), ("H2O", 1)),
                Arrhenius(A=1.0e7, n=0.0, Ea=3000.0),
            ),
        ]
        return Mechanism(species, rxns, name="troe-synthetic")

    def test_fd_exact(self, troe_mech, rng, mode):
        stj = SourceTermJacobian(troe_mech, mode=mode)
        T, Y = random_states(troe_mech, rng, 24)
        kw = closure_kwargs(mode, troe_mech, T, Y, rng)
        j_an = stj.jacobian(T, Y, **kw)
        j_fd = fd_jacobian(stj, T, Y, **kw)
        assert max_rel_error(j_an, j_fd) < FD_RTOL

    def test_fd_exact_across_pressure_range(self, troe_mech, rng):
        # sweep the falloff transition: Pr spans low to high pressure
        stj = SourceTermJacobian(troe_mech, mode="constant-pressure")
        T, Y = random_states(troe_mech, rng, 16)
        p = np.exp(rng.uniform(np.log(1e3), np.log(1e7), T.shape))
        j_an = stj.jacobian(T, Y, p=p)
        j_fd = fd_jacobian(stj, T, Y, p=p)
        assert max_rel_error(j_an, j_fd) < FD_RTOL


class TestSparsityPattern:
    """The declared CSR pattern covers every numerical nonzero."""

    def test_no_fill_in_h2(self, h2_mech, rng, mode):
        stj = SourceTermJacobian(h2_mech, mode=mode)
        T, Y = random_states(h2_mech, rng, 32)
        kw = closure_kwargs(mode, h2_mech, T, Y, rng)
        jac = stj.jacobian(T, Y, **kw)
        assert stj.pattern.fill_in(jac) == 0.0

    def test_no_fill_in_ch4(self, ch4_mech, rng, mode):
        stj = SourceTermJacobian(ch4_mech, mode=mode)
        T, Y = random_states(ch4_mech, rng, 32)
        kw = closure_kwargs(mode, ch4_mech, T, Y, rng)
        jac = stj.jacobian(T, Y, **kw)
        assert stj.pattern.fill_in(jac) == 0.0

    def test_inert_species_row_exactly_zero(self, h2_mech, rng, mode):
        # N2 participates in no H2/O2 reaction: its rate row must be
        # structurally (and numerically, exactly) zero in both closures
        stj = SourceTermJacobian(h2_mech, mode=mode)
        i_n2 = h2_mech.index("N2")
        assert not stj.pattern.mask[i_n2].any()
        T, Y = random_states(h2_mech, rng, 8)
        kw = closure_kwargs(mode, h2_mech, T, Y, rng)
        jac = stj.jacobian(T, Y, **kw)
        np.testing.assert_array_equal(jac[:, i_n2, :], 0.0)

    def test_constant_volume_keeps_graph_sparsity(self, ch4_mech):
        # const-v species block inherits reaction-graph sparsity; the
        # const-p closure densifies reactive rows through rho(Y, T).
        # (CH4 two-step has no third bodies, so the gap is strict — in
        # H2/air the default third-body efficiencies already couple
        # every reactive row to every concentration.)
        cv = SourceTermJacobian(ch4_mech, mode="constant-volume")
        cp = SourceTermJacobian(ch4_mech, mode="constant-pressure")
        assert cv.pattern.nnz < cp.pattern.nnz
        # and the CSR arrays are consistent with the mask
        for pat in (cv.pattern, cv.concentration_pattern):
            assert pat.nnz == int(pat.mask.sum())
            assert pat.indptr[-1] == pat.nnz

    def test_csr_values_roundtrip(self, h2_mech, rng):
        stj = SourceTermJacobian(h2_mech, mode="constant-volume")
        T, Y = random_states(h2_mech, rng, 4)
        jac = stj.jacobian(T, Y, rho=h2_mech.density(P_ATM, T, Y))
        vals = stj.pattern.csr_values(jac)
        assert vals.shape == (4, stj.pattern.nnz)
        dense = np.zeros_like(jac)
        dense[:, stj.pattern.rows, stj.pattern.indices] = vals
        np.testing.assert_array_equal(dense, jac)


class TestBatchShapeIndependence:
    def test_single_cell_extraction_bitwise(self, h2_mech, rng, mode):
        stj = SourceTermJacobian(h2_mech, mode=mode)
        T, Y = random_states(h2_mech, rng, 16)
        kw = closure_kwargs(mode, h2_mech, T, Y, rng)
        f_all, j_all = stj.source_and_jacobian(T, Y, **kw)
        for c in (0, 7, 15):
            sub = {k: v[c : c + 1] for k, v in kw.items()}
            f1, j1 = stj.source_and_jacobian(T[c : c + 1], Y[:, c : c + 1], **sub)
            np.testing.assert_array_equal(f1[:, 0], f_all[:, c])
            np.testing.assert_array_equal(j1[0], j_all[c])

    def test_gershgorin_positive_on_reacting_states(self, h2_mech, rng):
        stj = SourceTermJacobian(h2_mech, mode="constant-volume")
        T = np.full(6, 1500.0)
        Y = np.tile(
            h2_mech.mass_fractions_from(
                {"H2": 0.02, "O2": 0.22, "H": 1e-5, "N2": 0.75999}
            )[:, None],
            (1, 6),
        )
        Y /= Y.sum(axis=0)
        lam = stj.stiffness_estimate(T, Y, rho=h2_mech.density(P_ATM, T, Y))
        assert lam.shape == (6,)
        assert (lam > 0).all()
