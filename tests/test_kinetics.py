"""Tests for reaction kinetics: conservation laws, equilibrium, falloff."""

import numpy as np
import pytest

from repro.chemistry import Arrhenius, Falloff, Reaction, ThirdBody
from repro.chemistry.kinetics import KineticsEvaluator
from repro.util.constants import P_ATM, RU


class TestArrhenius:
    def test_constant_rate(self):
        k = Arrhenius(A=5.0)
        assert k(300.0) == pytest.approx(5.0)

    def test_temperature_exponent(self):
        k = Arrhenius(A=2.0, n=1.0)
        assert k(400.0) == pytest.approx(800.0)

    def test_activation_energy(self):
        k = Arrhenius(A=1.0, Ea=RU * 1000.0)
        assert k(1000.0) == pytest.approx(np.exp(-1.0))

    def test_vectorized(self):
        k = Arrhenius(A=1.0, n=2.0)
        np.testing.assert_allclose(k(np.array([1.0, 2.0])), [1.0, 4.0])


class TestReaction:
    def test_equation_string(self):
        r = Reaction((("H", 1), ("O2", 1)), (("OH", 1), ("O", 1)), Arrhenius(1.0))
        assert r.equation == "H + O2 <=> OH + O"

    def test_equation_third_body(self):
        r = Reaction((("H2", 1),), (("H", 2),), Arrhenius(1.0),
                     third_body=ThirdBody())
        assert "+ M" in r.equation

    def test_order(self):
        r = Reaction((("A", 1), ("B", 2)), (("C", 1),), Arrhenius(1.0))
        assert r.order() == 3


def _simple_system():
    """A <-> B with known thermo for analytic equilibrium."""
    from repro.chemistry.thermo import Nasa7, ThermoTable

    # two species with cp = 3.5 Ru, differing only in formation enthalpy
    def fit(h0_over_r, s0):
        return Nasa7(200.0, 1000.0, 3500.0,
                     (3.5, 0, 0, 0, 0, h0_over_r, s0),
                     (3.5, 0, 0, 0, 0, h0_over_r, s0))

    thermo = ThermoTable([fit(0.0, 0.0), fit(-500.0, 0.0)])
    rxn = Reaction((("A", 1),), (("B", 1),), Arrhenius(A=1e3), reversible=True)
    return KineticsEvaluator(["A", "B"], [rxn], thermo)


class TestEquilibrium:
    def test_unimolecular_kc(self):
        """Kc = exp(-dG/RT); for equal-entropy species, exp(dH0/RuT)."""
        ev = _simple_system()
        T = np.array([800.0])
        kc = ev.equilibrium_constants(T)[0]
        # dh = -500*Ru (B lower), so Kc = exp(500/T)
        assert kc[0] == pytest.approx(np.exp(500.0 / 800.0), rel=1e-10)

    def test_net_rate_vanishes_at_equilibrium(self):
        ev = _simple_system()
        T = np.array([900.0])
        kc = float(ev.equilibrium_constants(T)[0][0])
        total = 10.0
        cb = total * kc / (1 + kc)
        C = np.array([[total - cb], [cb]])
        q = ev.rates_of_progress(T, C)
        assert abs(q[0, 0]) < 1e-8 * total


class TestConservation:
    def test_mass_conservation(self, h2_mech):
        rng = np.random.default_rng(42)
        Y = rng.random((h2_mech.n_species, 20))
        Y /= Y.sum(axis=0)
        T = np.linspace(800.0, 2500.0, 20)
        rho = np.linspace(0.1, 2.0, 20)
        wdot = h2_mech.production_rates(rho, T, Y)
        scale = np.abs(wdot).max()
        assert np.abs(wdot.sum(axis=0)).max() <= 1e-10 * max(scale, 1.0)

    def test_element_conservation(self, h2_mech):
        rng = np.random.default_rng(7)
        Y = rng.random((h2_mech.n_species, 10))
        Y /= Y.sum(axis=0)
        T = np.linspace(900.0, 2200.0, 10)
        wdot_molar = h2_mech.production_rates(1.0, T, Y) / h2_mech.weights[:, None]
        el = h2_mech.element_matrix @ wdot_molar
        scale = np.abs(wdot_molar).max()
        assert np.abs(el).max() <= 1e-9 * max(scale, 1.0)

    def test_inert_mixture_no_production(self, h2_mech):
        """Pure N2 produces nothing."""
        Y = np.zeros((h2_mech.n_species, 3))
        Y[h2_mech.index("N2")] = 1.0
        wdot = h2_mech.production_rates(1.0, np.full(3, 1500.0), Y)
        assert np.abs(wdot).max() < 1e-12


class TestFalloff:
    def test_lindemann_limits(self):
        """k -> k0[M] at low pressure, k_inf at high pressure."""
        f = Falloff(low=Arrhenius(A=1e6))
        kinf = Arrhenius(A=1e3)
        T = np.array([1000.0])
        k0 = 1e6  # constant low-pressure rate
        for m in (1e-9, 1e9):
            pr = k0 * m / 1e3
            blend = 1e3 * pr / (1 + pr) * float(np.asarray(f.broadening(T, np.array([pr]))).ravel()[0])
            if m < 1:
                assert blend == pytest.approx(k0 * m, rel=1e-3)
            else:
                assert blend == pytest.approx(1e3, rel=1e-3)

    def test_constant_fcent_broadening_at_center(self):
        """At Pr = 1, F = Fcent^(1/(1+f1^2)) with f1 evaluated at log Pr=0."""
        f = Falloff(low=Arrhenius(A=1.0), fcent=0.8)
        F = f.broadening(np.array([1000.0]), np.array([1.0]))
        assert 0.8 <= F[0] <= 1.0

    def test_troe_form_temperature_dependence(self):
        f = Falloff(low=Arrhenius(A=1.0), troe=(0.5, 100.0, 2000.0))
        F1 = f.broadening(np.array([500.0]), np.array([1.0]))
        F2 = f.broadening(np.array([2000.0]), np.array([1.0]))
        assert F1[0] != F2[0]
        assert 0.0 < F1[0] <= 1.0

    def test_h2_falloff_pressure_dependence(self, h2_mech):
        """H+O2(+M)=HO2(+M) rate grows with pressure at fixed T."""
        ev = h2_mech.kinetics
        j = next(
            i for i, r in enumerate(ev.reactions)
            if r.falloff is not None and ("HO2", 1) in r.products
        )
        T = np.array([1000.0])
        Y = np.zeros((h2_mech.n_species, 1))
        Y[h2_mech.index("H2")] = 0.3
        Y[h2_mech.index("O2")] = 0.7
        k_low = ev.forward_rate_constants(T, h2_mech.concentrations(0.01, Y))[j]
        k_high = ev.forward_rate_constants(T, h2_mech.concentrations(10.0, Y))[j]
        assert k_high[0] > k_low[0]


class TestThirdBody:
    def test_efficiency_weighting(self, h2_mech):
        ev = h2_mech.kinetics
        # find H2 + M <=> H + H + M
        j = next(
            i for i, r in enumerate(ev.reactions)
            if r.third_body is not None and r.falloff is None
            and r.reactants == (("H2", 1),)
        )
        C = np.zeros((h2_mech.n_species, 1))
        C[h2_mech.index("H2O")] = 1.0
        m_h2o = ev._third_body_conc(j, C)
        C2 = np.zeros_like(C)
        C2[h2_mech.index("N2")] = 1.0
        m_n2 = ev._third_body_conc(j, C2)
        assert m_h2o[0] == pytest.approx(12.0 * m_n2[0])


class TestProductionRates:
    def test_ignition_direction(self, h2_mech, h2_air_stoich):
        """Hot stoichiometric mixture consumes H2 and O2."""
        T = np.array([1500.0])
        Y = h2_air_stoich[:, None]
        rho = h2_mech.density(P_ATM, T, Y)
        wdot = h2_mech.production_rates(rho, T, Y)
        assert wdot[h2_mech.index("H2")][0] < 0
        assert wdot[h2_mech.index("O2")][0] < 0

    def test_heat_release_positive_during_burn(self, h2_mech, h2_air_stoich):
        """Net heat release is positive once runaway is under way.

        (During the induction phase the endothermic branching
        H + O2 -> O + OH keeps net heat release near zero or negative —
        real H2 chemistry.) We sample a const-pressure reactor mid-runaway.
        """
        from repro.chemistry import ConstPressureReactor

        reactor = ConstPressureReactor(h2_mech, P_ATM)
        t, T, Y = reactor.integrate(1200.0, h2_air_stoich, 1e-3, n_out=400)
        k = int(np.argmax(T >= 1800.0))  # mid-temperature-rise sample
        Yk = np.clip(Y[:, k], 0, 1)[:, None]
        Tk = np.array([T[k]])
        rho = h2_mech.density(P_ATM, Tk, Yk)
        q = h2_mech.heat_release_rate(rho, Tk, Yk)
        assert q[0] > 0

    def test_initiation_is_endothermic(self, h2_mech, h2_air_stoich):
        """Zero-radical hot reactants: dissociation dominates, q < 0."""
        T = np.array([1600.0])
        Y = h2_air_stoich[:, None]
        rho = h2_mech.density(P_ATM, T, Y)
        q = h2_mech.heat_release_rate(rho, T, Y)
        assert q[0] < 0

    def test_cold_mixture_is_frozen(self, h2_mech, h2_air_stoich):
        T = np.array([300.0])
        Y = h2_air_stoich[:, None]
        rho = h2_mech.density(P_ATM, T, Y)
        wdot = h2_mech.production_rates(rho, T, Y)
        # utterly negligible at room temperature
        assert np.abs(wdot).max() < 1e-6

    def test_duplicate_reactions_sum(self, h2_mech):
        """HO2+HO2 channels both contribute (duplicate pair present)."""
        dups = [r for r in h2_mech.reactions if r.duplicate]
        assert len(dups) == 4  # two duplicate pairs in Li 2004

    def test_batch_shape_independence(self, h2_mech, rng):
        """Per-cell rates are bitwise identical at any batch size.

        The chemistry load balancer's bit-exactness guarantee rests on
        this: a cell evaluated in a shipped batch, a one-cell fallback,
        or the full grid block must produce identical bits. Regression
        guard for the broadcast-pow 1-ulp divergence NumPy's length-1
        inner loops used to trigger in ``equilibrium_constants``.
        """
        n = 257  # odd size: exercises SIMD remainder tails
        T = np.where(rng.random(n) < 0.5, 300.0, 1500.0) + 5.0 * rng.random(n)
        Y = np.zeros((h2_mech.n_species, n))
        Y[h2_mech.index("H2")] = 0.028
        Y[h2_mech.index("O2")] = 0.226
        Y[h2_mech.index("OH")] = 0.001 * rng.random(n)
        Y[h2_mech.index("N2")] = 1.0 - Y.sum(axis=0)
        rho = 0.4 + 0.05 * rng.random(n)
        full = h2_mech.production_rates_cells(rho, T, Y)
        # every cell as a one-cell batch
        for i in range(n):
            one = h2_mech.production_rates_cells(
                rho[i : i + 1], T[i : i + 1], Y[:, i : i + 1]
            )
            assert np.array_equal(one[:, 0], full[:, i]), f"cell {i}"
        # a shuffled contiguous sub-batch
        idx = rng.permutation(n)[:100]
        sub = h2_mech.production_rates_cells(
            np.ascontiguousarray(rho[idx]),
            np.ascontiguousarray(T[idx]),
            np.ascontiguousarray(Y[:, idx]),
        )
        assert np.array_equal(sub, full[:, idx])

    def test_orders_override(self):
        """FORD-style orders change effective concentration dependence."""
        from repro.chemistry.mechanisms.builders import make_species
        from repro.chemistry.mechanism import Mechanism

        sp = [make_species(n) for n in ("CH4", "O2", "CO2", "H2O", "N2")]
        rxn = Reaction(
            (("CH4", 1), ("O2", 2)), (("CO2", 1), ("H2O", 2)),
            Arrhenius(A=1.0), reversible=False, orders=(("CH4", 1.0), ("O2", 0.5)),
        )
        mech = Mechanism(sp, [rxn])
        T = np.array([1000.0])
        C = np.zeros((5, 1))
        C[0] = 2.0
        C[1] = 4.0
        q = mech.kinetics.rates_of_progress(T, C)
        assert q[0, 0] == pytest.approx(2.0 * 4.0**0.5)
