"""Tests for the LoopTool study: IR, transforms, cache sim, kernels."""

import numpy as np
import pytest

from repro.loopopt import (
    ArrayRef,
    Assign,
    CacheSim,
    Guard,
    Loop,
    Program,
    diffflux_program,
    interpret,
    naive_diffusive_flux,
    optimized_diffusive_flux,
    simulate_trace,
    trace_accesses,
    unswitch,
)
from repro.loopopt.transforms import (
    fuse_adjacent_loops,
    fuse_program,
    looptool_pipeline,
    unroll_and_jam,
)


def _stores_equal(a: dict, b: dict) -> bool:
    return all(np.allclose(a[k], b[k], rtol=1e-12) for k in a)


def _timed(fn, args, time):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def _simple_program(flag=True):
    i = ("i", 0)
    return Program(
        arrays={"a": (16,), "b": (16,), "c": (16,)},
        flags={"f": flag},
        body=[
            Loop("i", 16, [Assign(ArrayRef("a", (i,)), (ArrayRef("b", (i,)),))]),
            Guard("f", [
                Loop("i", 16, [
                    Assign(ArrayRef("c", (i,)),
                           (ArrayRef("a", (i,)), ArrayRef("b", (i,))))
                ]),
            ]),
        ],
    )


class TestInterpreter:
    def test_sum_semantics(self):
        prog = _simple_program()
        out = interpret(prog, inputs={"b": np.arange(16.0)})
        np.testing.assert_allclose(out["a"], np.arange(16.0))
        np.testing.assert_allclose(out["c"], 2 * np.arange(16.0))

    def test_guard_false_skips(self):
        prog = _simple_program(flag=False)
        ref = interpret(prog, inputs={"b": np.ones(16)})
        # c keeps its pseudo-random initial content: it must NOT be 2*b
        assert not np.allclose(ref["c"], 2.0)

    def test_accumulate(self):
        i = ("i", 0)
        prog = Program(
            arrays={"a": (4,), "b": (4,)},
            flags={},
            body=[
                Loop("i", 4, [
                    Assign(ArrayRef("a", (i,)), (ArrayRef("b", (i,)),)),
                    Assign(ArrayRef("a", (i,)), (ArrayRef("b", (i,)),),
                           accumulate=True),
                ]),
            ],
        )
        out = interpret(prog, inputs={"b": np.ones(4)})
        np.testing.assert_allclose(out["a"], 2.0)

    def test_bad_input_shape(self):
        with pytest.raises(ValueError):
            interpret(_simple_program(), inputs={"b": np.ones(5)})

    def test_trace_covers_reads_and_writes(self):
        prog = _simple_program()
        trace = trace_accesses(prog)
        reads = sum(1 for _, w in trace if not w)
        writes = sum(1 for _, w in trace if w)
        # loop 1: 16 reads + 16 writes; loop 2: 32 reads + 16 writes
        assert writes == 32
        assert reads == 48


class TestTransforms:
    def test_unswitch_preserves_semantics(self):
        for flag in (True, False):
            prog = _simple_program(flag)
            assert _stores_equal(interpret(prog), interpret(unswitch(prog)))

    def test_unswitch_hoists_guards_to_top(self):
        p = unswitch(_simple_program())
        assert all(isinstance(n, Guard) for n in p.body)

    def test_fusion_preserves_semantics(self):
        prog = _simple_program()
        fused = fuse_program(unswitch(prog))
        assert _stores_equal(interpret(prog), interpret(fused))

    def test_fusion_merges_loops(self):
        p = fuse_program(unswitch(_simple_program(True)))
        # inside the taken guard there should be ONE fused loop
        taken = next(n for n in p.body if isinstance(n, Guard) and not n.negate)
        loops = [n for n in taken.body if isinstance(n, Loop)]
        assert len(loops) == 1
        assert len(loops[0].body) == 2

    def test_fusion_blocked_by_carried_dependence(self):
        i = ("i", 0)
        a = Loop("i", 8, [Assign(ArrayRef("a", (i,)), (ArrayRef("b", (i,)),))])
        # reads a[i+1]: fusing would read not-yet-written values
        b = Loop("i", 8, [Assign(ArrayRef("c", (i,)), (ArrayRef("a", (("i", 1),)),))])
        fused = fuse_adjacent_loops([a, b])
        assert len(fused) == 2  # not fused

    def test_unroll_and_jam_semantics(self):
        i = ("i", 0)
        body = [Assign(ArrayRef("a", (("n", 0), i)), (ArrayRef("b", (("n", 0), i)),))]
        inner = Loop("i", 6, body)
        loop = Loop("n", 5, [inner])
        prog1 = Program({"a": (5, 6), "b": (5, 6)}, {}, [loop])
        prog2 = Program({"a": (5, 6), "b": (5, 6)}, {}, unroll_and_jam(loop, 2))
        assert _stores_equal(interpret(prog1), interpret(prog2))

    def test_unroll_factor_one_identity(self):
        loop = Loop("n", 3, [])
        assert unroll_and_jam(loop, 1) == (loop,)

    def test_full_pipeline_semantics(self):
        for flags in ((True, True), (True, False), (False, False)):
            prog = diffflux_program(n_species=5, n_cells=30,
                                    baro=flags[0], thermdiff=flags[1])
            ref = interpret(prog)
            out = interpret(looptool_pipeline(prog))
            assert _stores_equal(ref, out)


class TestCacheSim:
    def test_cold_misses(self):
        sim = CacheSim(size_bytes=1 << 12, line_bytes=64, associativity=4)
        for addr in range(0, 640, 8):
            sim.access(addr)
        assert sim.stats.misses == 10  # 640 B / 64 B lines
        assert sim.stats.hits == 70

    def test_lru_eviction(self):
        # 2 sets x 2 ways x 64 B = 256 B cache
        sim = CacheSim(size_bytes=256, line_bytes=64, associativity=2)
        sim.access(0)      # set 0
        sim.access(128)    # set 0
        sim.access(0)      # hit, 0 becomes MRU
        sim.access(256)    # set 0: evicts 128 (LRU)
        assert sim.access(0) is True
        assert sim.access(128) is False  # was evicted

    def test_size_validation(self):
        with pytest.raises(ValueError):
            CacheSim(size_bytes=1000, line_bytes=64, associativity=4)

    def test_reset(self):
        sim = CacheSim()
        sim.access(0)
        sim.reset()
        assert sim.stats.accesses == 0

    @pytest.mark.slow
    def test_transforms_reduce_misses(self):
        """The Fig 5 payoff: the pipeline cuts cache misses substantially
        when field slices exceed the cache."""
        prog = diffflux_program(n_species=9, n_cells=12000, thermdiff=True)
        kw = dict(size_bytes=1 << 16)
        before = simulate_trace(trace_accesses(prog), **kw)
        after = simulate_trace(trace_accesses(looptool_pipeline(prog)), **kw)
        assert after.misses < 0.65 * before.misses


class TestDiffFluxKernels:
    @pytest.fixture(scope="class")
    def data(self):
        ns, S = 7, (16, 16, 16)
        rng = np.random.default_rng(3)
        return dict(
            Ys=rng.random((ns,) + S),
            grad_Ys=rng.random((ns, 3) + S),
            Ds=rng.random((ns,) + S),
            grad_mixMW=rng.random((3,) + S),
            grad_T=rng.random((3,) + S),
            T=1.0 + rng.random(S),
            theta=rng.random((ns,) + S),
        )

    def test_kernels_agree_plain(self, data):
        f1 = naive_diffusive_flux(data["Ys"], data["grad_Ys"], data["Ds"],
                                  data["grad_mixMW"])
        f2 = optimized_diffusive_flux(data["Ys"], data["grad_Ys"], data["Ds"],
                                      data["grad_mixMW"])
        np.testing.assert_allclose(f1, f2, rtol=1e-12, atol=1e-14)

    def test_kernels_agree_thermdiff(self, data):
        kw = dict(grad_T=data["grad_T"], T=data["T"], theta=data["theta"],
                  thermdiff=True)
        f1 = naive_diffusive_flux(data["Ys"], data["grad_Ys"], data["Ds"],
                                  data["grad_mixMW"], **kw)
        f2 = optimized_diffusive_flux(data["Ys"], data["grad_Ys"], data["Ds"],
                                      data["grad_mixMW"], **kw)
        np.testing.assert_allclose(f1, f2, rtol=1e-12, atol=1e-14)

    def test_mass_conservation(self, data):
        """Last-species flux closes the sum: total diffusive flux = 0."""
        f = optimized_diffusive_flux(data["Ys"], data["grad_Ys"], data["Ds"],
                                     data["grad_mixMW"])
        total = f.sum(axis=0)
        assert np.abs(total).max() < 1e-12 * np.abs(f).max()

    def test_optimized_not_slower(self):
        """On benchmark-sized fields the restructured kernel wins; tiny
        fields are excluded (fixed call overheads dominate there).
        Repeats 5x and compares best-of to damp scheduler noise."""
        import time

        ns, S = 9, (40, 40, 40)
        rng = np.random.default_rng(11)
        args = (rng.random((ns,) + S), rng.random((ns, 3) + S),
                rng.random((ns,) + S), rng.random((3,) + S))
        t_naive = min(
            _timed(naive_diffusive_flux, args, time) for _ in range(5)
        )
        t_opt = min(
            _timed(optimized_diffusive_flux, args, time) for _ in range(5)
        )
        assert t_opt < 1.2 * t_naive
