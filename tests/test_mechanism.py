"""Tests for the Mechanism container: EOS, mixture rules, energy inversion."""

import numpy as np
import pytest

from repro.chemistry.mechanism import Mechanism
from repro.chemistry.mechanisms.builders import make_species
from repro.util.constants import P_ATM, RU


class TestComposition:
    def test_mean_weight_air(self, air_mech, air_y):
        w = air_mech.mean_weight(air_y)
        assert w == pytest.approx(28.85e-3, rel=2e-3)

    def test_mass_mole_roundtrip(self, h2_mech):
        rng = np.random.default_rng(3)
        Y = rng.random((h2_mech.n_species, 6))
        Y /= Y.sum(axis=0)
        X = h2_mech.mass_to_mole(Y)
        Y2 = h2_mech.mole_to_mass(X)
        np.testing.assert_allclose(Y2, Y, rtol=1e-12)

    def test_mole_fractions_sum_to_one(self, h2_mech):
        rng = np.random.default_rng(4)
        Y = rng.random((h2_mech.n_species, 5))
        Y /= Y.sum(axis=0)
        X = h2_mech.mass_to_mole(Y)
        np.testing.assert_allclose(X.sum(axis=0), 1.0, rtol=1e-12)

    def test_concentrations(self, air_mech, air_y):
        C = air_mech.concentrations(1.2, air_y)
        # total molar concentration = rho / W
        assert C.sum() == pytest.approx(1.2 / air_mech.mean_weight(air_y))

    def test_mass_fractions_from_rejects_bad_sum(self, air_mech):
        with pytest.raises(ValueError, match="sum to 1"):
            air_mech.mass_fractions_from({"O2": 0.5})

    def test_element_mass_fractions_sum_to_one(self, h2_mech):
        rng = np.random.default_rng(5)
        Y = rng.random((h2_mech.n_species, 4))
        Y /= Y.sum(axis=0)
        Z = h2_mech.element_mass_fractions(Y)
        np.testing.assert_allclose(Z.sum(axis=0), 1.0, rtol=1e-10)

    def test_duplicate_species_rejected(self):
        sp = [make_species("O2"), make_species("O2")]
        with pytest.raises(ValueError, match="duplicate"):
            Mechanism(sp)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mechanism([])


class TestEOS:
    def test_air_density_at_stp(self, air_mech, air_y):
        rho = air_mech.density(P_ATM, 273.15, air_y)
        assert rho == pytest.approx(1.292, rel=5e-3)

    def test_pressure_density_roundtrip(self, h2_mech, h2_air_stoich):
        rho = h2_mech.density(2e5, 700.0, h2_air_stoich)
        p = h2_mech.pressure(rho, 700.0, h2_air_stoich)
        assert p == pytest.approx(2e5, rel=1e-12)

    def test_gas_constant(self, air_mech, air_y):
        r = air_mech.gas_constant(air_y)
        assert r == pytest.approx(288.0, rel=2e-3)

    def test_sound_speed_air(self, air_mech, air_y):
        a = air_mech.sound_speed(np.array(300.0), air_y)
        assert float(a) == pytest.approx(347.0, rel=0.01)


class TestCaloric:
    def test_cp_cv_relation(self, h2_mech, h2_air_stoich):
        T = np.array([600.0])
        cp = h2_mech.cp_mass(T, h2_air_stoich[:, None])
        cv = h2_mech.cv_mass(T, h2_air_stoich[:, None])
        r = h2_mech.gas_constant(h2_air_stoich[:, None])
        assert (cp - cv)[0] == pytest.approx(r[0], rel=1e-12)

    def test_enthalpy_energy_relation(self, air_mech, air_y):
        T = np.array([900.0])
        h = air_mech.enthalpy_mass(T, air_y[:, None])
        e = air_mech.int_energy_mass(T, air_y[:, None])
        r = air_mech.gas_constant(air_y[:, None])
        assert (h - e)[0] == pytest.approx(r[0] * 900.0, rel=1e-12)

    def test_temperature_from_energy_roundtrip(self, h2_mech, h2_air_stoich):
        T = np.array([450.0, 1350.0, 2400.0])
        Y = np.repeat(h2_air_stoich[:, None], 3, axis=1)
        e = h2_mech.int_energy_mass(T, Y)
        T2 = h2_mech.temperature_from_energy(e, Y)
        np.testing.assert_allclose(T2, T, rtol=1e-8)

    def test_temperature_from_enthalpy_roundtrip(self, h2_mech, h2_air_stoich):
        T = np.array([500.0, 1800.0])
        Y = np.repeat(h2_air_stoich[:, None], 2, axis=1)
        h = h2_mech.enthalpy_mass(T, Y)
        T2 = h2_mech.temperature_from_enthalpy(h, Y)
        np.testing.assert_allclose(T2, T, rtol=1e-8)

    def test_newton_uses_guess(self, air_mech, air_y):
        """Converges from a provided nearby guess."""
        T = np.array([1234.5])
        e = air_mech.int_energy_mass(T, air_y[:, None])
        T2 = air_mech.temperature_from_energy(e, air_y[:, None], T_guess=np.array([1200.0]))
        assert T2[0] == pytest.approx(1234.5, rel=1e-8)

    def test_cp_air_value(self, air_mech, air_y):
        cp = air_mech.cp_mass(np.array(300.0), air_y)
        assert float(cp) == pytest.approx(1005.0, rel=0.01)


class TestAdiabaticFlameTemperature:
    def test_h2_air_constant_pressure(self, h2_mech, h2_air_stoich):
        """Equilibrium-ish check: burning to near-complete H2O at constant
        enthalpy gives the textbook ~2400 K adiabatic flame temperature."""
        from repro.chemistry import ConstPressureReactor

        reactor = ConstPressureReactor(h2_mech, P_ATM)
        t, T, Y = reactor.integrate(1100.0, h2_air_stoich, 5e-3, n_out=100)
        # started preheated at 1100 K; flame temperature should approach
        # the adiabatic value for those reactants (> 2500 K) and level off
        assert T[-1] > 2400.0
        assert abs(T[-1] - T[-2]) < 5.0
