"""Method-of-manufactured-solutions convergence of the *full* RHS.

Operator-level tests (tests/test_derivatives.py) pin the formal order of
each stencil in isolation; these tests verify that the assembled
compressible reacting RHS — convection, viscous/diffusive fluxes,
temperature recovery, and chemistry together — converges at the formal
order of the 8th-order spatial discretization.

Method: evaluate the RHS of smooth manufactured periodic fields on a
sequence of coarse grids and on one much finer reference grid of the
same domain. Uniform periodic grids with ``N | N_ref`` share grid
points exactly, so the reference RHS restricted to the shared points
differs from the true RHS by ``O(dx_ref^8)`` — negligible against the
coarse-grid error. Pointwise terms (chemistry, the Newton temperature
solve) are identical functions of identical inputs at shared points, so
only the spatially discretized terms contribute to the measured error,
which is exactly what should converge at the stencil's formal order.
"""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.rhs import CompressibleRHS
from repro.core.state import State
from repro.transport import ConstantLewisTransport

pytestmark = pytest.mark.mms

#: formal order of the interior discretization (8th-order central)
FORMAL_ORDER = 8
#: observed order must land within this of the formal order
ORDER_TOL = 1.0


def _manufactured_primitives(mech, grid):
    """Smooth periodic fields with O(1) variation in every variable."""
    mesh = grid.meshgrid()
    L = grid.lengths
    # phase sums over all axes so every direction is exercised
    ph = sum(2.0 * np.pi * x / l for x, l in zip(mesh, L))
    ph2 = sum(4.0 * np.pi * x / l for x, l in zip(mesh, L))
    # keep T strictly inside one NASA-polynomial branch (T > 1000 K):
    # the 1000 K knot is only C^1, and crossing it puts kinks in e(T)
    # whose algebraic spectral decay would cap the observed order
    T = 1500.0 + 200.0 * np.sin(ph) + 60.0 * np.cos(ph2)
    vel = [
        30.0 * np.sin(ph + 0.3 * a) + 10.0 * np.cos(ph2 - 0.2 * a)
        for a in range(grid.ndim)
    ]
    ns = mech.n_species
    Y = np.zeros((ns,) + grid.shape)
    Y[mech.index("H2")] = 0.02 + 0.008 * np.sin(ph)
    Y[mech.index("O2")] = 0.22 + 0.02 * np.cos(ph)
    Y[mech.index("H2O")] = 0.05 + 0.01 * np.sin(ph2)
    Y[mech.index("OH")] = 0.002 + 0.001 * np.cos(ph2)
    Y[mech.index("N2")] = 1.0 - Y.sum(axis=0)
    p = 101325.0 * (1.0 + 0.05 * np.sin(ph))
    rho = mech.density(p, T, Y)
    return rho, vel, T, Y


def _rhs_field(mech, shape, lengths, reacting=True):
    """Full RHS of the manufactured fields on a periodic grid."""
    grid = Grid(shape, lengths, periodic=(True,) * len(shape))
    rho, vel, T, Y = _manufactured_primitives(mech, grid)
    state = State.from_primitive(mech, grid, rho, vel, T, Y)
    rhs = CompressibleRHS(
        state,
        transport=ConstantLewisTransport(mech),
        boundaries={},
        reacting=reacting,
    )
    return rhs(0.0, state.u)


def _restrict(fine, step, ndim):
    """Fine-grid array restricted to every ``step``-th point per axis."""
    sl = (slice(None),) + (slice(None, None, step),) * ndim
    return fine[sl]


def _observed_orders(mech, sizes, n_ref, lengths, reacting=True):
    """Observed convergence orders of the full RHS across ``sizes``."""
    ndim = len(lengths)
    du_ref = _rhs_field(mech, (n_ref,) * ndim, lengths, reacting=reacting)
    ref_norm = np.sqrt(np.mean(du_ref**2))
    errors = []
    for n in sizes:
        assert n_ref % n == 0, "coarse grids must share points with the reference"
        du = _rhs_field(mech, (n,) * ndim, lengths, reacting=reacting)
        ref = _restrict(du_ref, n_ref // n, ndim)
        errors.append(np.sqrt(np.mean((du - ref) ** 2)) / ref_norm)
    errors = np.array(errors)
    # all errors must be resolvable above the reference-grid floor
    assert errors.min() > 1e-13, f"errors hit roundoff floor: {errors}"
    ratios = np.array(sizes[1:]) / np.array(sizes[:-1], dtype=float)
    return np.log(errors[:-1] / errors[1:]) / np.log(ratios), errors


class TestFullRHSConvergence1D:
    def test_reacting_viscous_order(self, h2_mech):
        orders, errors = _observed_orders(
            h2_mech, sizes=(32, 64, 128), n_ref=512, lengths=(0.02,)
        )
        assert errors[0] > errors[-1], f"no convergence: {errors}"
        for o in orders:
            assert abs(o - FORMAL_ORDER) < ORDER_TOL, (
                f"observed orders {orders} not within {ORDER_TOL} of "
                f"formal order {FORMAL_ORDER} (errors {errors})"
            )

    def test_inert_order_matches(self, h2_mech):
        # chemistry is pointwise-exact at shared points, so switching it
        # off must not change the observed order
        orders, _ = _observed_orders(
            h2_mech, sizes=(32, 64, 128), n_ref=512, lengths=(0.02,),
            reacting=False,
        )
        for o in orders:
            assert abs(o - FORMAL_ORDER) < ORDER_TOL, f"orders {orders}"


@pytest.mark.slow
class TestFullRHSConvergence2D:
    def test_reacting_viscous_order(self, h2_mech):
        orders, errors = _observed_orders(
            h2_mech, sizes=(32, 64), n_ref=128, lengths=(0.02, 0.02)
        )
        assert errors[0] > errors[-1], f"no convergence: {errors}"
        for o in orders:
            assert abs(o - FORMAL_ORDER) < ORDER_TOL, (
                f"observed orders {orders} (errors {errors})"
            )
