"""Tests for the simulation health observatory.

Covers the watchdog edge cases the issue calls out (NaN mid-RK-stage vs
end-of-step, mass fractions exactly at the 0/1 bounds, dt exactly at
the CFL limit, deterministic wall-time outliers), the flight recorder's
JSONL round-trip and fault-injected dump path, trip-to-rollback via the
resilience supervisor, cross-rank profile fusion against the perfmodel
imbalance statistic, the render layer (ASCII/HTML, offline replay),
and the null path's bitwise identity.
"""

import json
import math

import numpy as np
import pytest

from repro.core import Grid, S3DSolver, SolverConfig, ic
from repro.core.config import periodic_boundaries
from repro.core.state import State
from repro.io import SimFileSystem, lustre
from repro.observability import (
    BoundsWatchdog,
    CFLMarginWatchdog,
    ConservationWatchdog,
    FlightRecorder,
    HealthMonitor,
    NaNSentinel,
    NULL_HEALTH,
    RunMonitor,
    SCHEMA_VERSION,
    StepContext,
    StepRecord,
    WallTimeAnomalyWatchdog,
    WatchdogTripError,
    fuse_profiles,
    html_report,
    replay_report,
    resolve_mode,
    sparkline,
    standard_watchdogs,
    worst_severity,
    write_html_report,
)
from repro.parallel.comm import SimMPI
from repro.parallel.decomp import CartesianDecomposition
from repro.parallel.solver import ParallelPeriodicSolver
from repro.resilience import FaultInjector
from repro.telemetry import Telemetry
from repro.util.constants import P_ATM


def _pulse_solver(mech, Y, n=32, observability=None, **cfg_kwargs):
    grid = Grid((n,), (1.0,), periodic=(True,))
    state = ic.pressure_pulse(mech, grid, p0=P_ATM, T0=300.0, Y=Y,
                              amplitude=1e-3, width=0.05)
    cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=5e-8,
                       filter_interval=2, filter_alpha=0.2,
                       observability=observability, **cfg_kwargs)
    return S3DSolver(state, cfg, transport=None, reacting=False)


@pytest.fixture
def solver(air_mech, air_y):
    return _pulse_solver(air_mech, air_y, observability="on")


class TestModeResolution:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBSERVABILITY", raising=False)
        assert resolve_mode(None) == "off"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBSERVABILITY", "full")
        assert resolve_mode(None) == "full"

    @pytest.mark.parametrize("value,expected", [
        (True, "on"), (False, "off"), ("on", "on"), ("1", "on"),
        ("full", "full"), ("OFF", "off"), ("", "off"), ("0", "off"),
    ])
    def test_values(self, value, expected):
        assert resolve_mode(value) == expected

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="observability"):
            resolve_mode("sometimes")

    def test_config_validate_rejects_typo(self, air_mech):
        grid = Grid((16,), (1.0,), periodic=(True,))
        cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=1e-8,
                           observability="paranoid-ish")
        with pytest.raises(ValueError, match="observability"):
            cfg.validate(grid)

    def test_off_gives_null_monitor(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="off")
        assert s.health is NULL_HEALTH
        assert not s.health.enabled

    def test_full_arms_conservation_on_periodic(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="full")
        names = [w.name for w in s.health.watchdogs]
        assert "conservation" in names
        assert s.health.record_telemetry_delta is False  # telemetry off

    def test_severity_lattice(self):
        assert worst_severity(["ok", "warn", "ok"]) == "warn"
        assert worst_severity(["warn", "trip"]) == "trip"
        assert worst_severity([]) == "ok"


class TestNaNSentinel:
    def test_end_of_step_nan_trips(self, solver):
        solver.step()
        solver.state.u[0, 5] = np.nan
        solver.state.mark_modified()
        with pytest.raises(WatchdogTripError) as err:
            solver.health.check(5e-8)
        events = err.value.events
        assert events[0].watchdog == "nan_sentinel"
        assert "rho" in events[0].message
        assert solver.health.trips == 1

    def test_inf_trips_too(self, solver):
        solver.step()
        solver.state.u[1, 3] = np.inf
        solver.state.mark_modified()
        with pytest.raises(WatchdogTripError):
            solver.health.check(5e-8)

    def test_mid_rk_stage_nan_caught_by_stage_guard(self, air_mech, air_y):
        """A slope poisoned mid-stage trips before end-of-step blending."""
        s = _pulse_solver(air_mech, air_y, observability="full")
        calls = []
        real_rhs = s.rhs

        class PoisoningRHS:
            supports_out = getattr(real_rhs, "supports_out", False)

            def __call__(self, t, u, out=None):
                du = real_rhs(t, u, out=out)
                calls.append(len(calls))
                if len(calls) == 3:  # third RK stage of the first step
                    du[0, 0] = np.nan
                return du

            def __getattr__(self, name):
                return getattr(real_rhs, name)

        s.rhs = PoisoningRHS()
        with pytest.raises(WatchdogTripError) as err:
            s.step()
        assert err.value.events[0].watchdog == "rk_stage_guard"
        assert "stage 2" in err.value.events[0].message
        # the guard fired at stage 3 of 6: the step never completed
        assert len(calls) == 3
        assert s.step_count == 0

    def test_without_stage_guard_nan_survives_to_end_of_step(
            self, air_mech, air_y):
        """mode="on" has no stage guard: a slope poisoned at the final
        RK stage (so no later stage re-evaluates the RHS on NaN input)
        blends into the state and is only caught by the end-of-step
        sentinel — the contrast the issue requires. Classic RK4: its
        final-stage weight (1/6) is nonzero, unlike rkf45's 4th-order
        weights."""
        s = _pulse_solver(air_mech, air_y, observability="on", scheme="rk4")
        calls = []
        real_rhs = s.rhs

        class PoisoningRHS:
            supports_out = getattr(real_rhs, "supports_out", False)

            def __call__(self, t, u, out=None):
                du = real_rhs(t, u, out=out)
                calls.append(len(calls))
                if len(calls) == 4:  # last rk4 stage
                    du[0, 0] = np.nan
                return du

            def __getattr__(self, name):
                return getattr(real_rhs, name)

        s.rhs = PoisoningRHS()
        with pytest.raises(WatchdogTripError) as err:
            s.run(1)
        # all four stages evaluated; step completed; sentinel caught it
        assert err.value.events[0].watchdog == "nan_sentinel"
        assert len(calls) == 4
        assert s.step_count == 1


class TestBoundsWatchdog:
    def test_exactly_zero_and_one_pass(self, air_mech):
        """Pure-stream mass fractions (exactly 0.0 / 1.0) are physical."""
        grid = Grid((16,), (1.0,), periodic=(True,))
        Y = np.zeros((air_mech.n_species, 16))
        Y[0] = 1.0  # pure first species: exactly 1.0 and exactly 0.0
        rho = air_mech.density(P_ATM, 300.0 * np.ones(16), Y)
        state = State.from_primitive(air_mech, grid, rho, [0.0], 300.0, Y)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=1e-8)
        s = S3DSolver(state, cfg, transport=None, reacting=False)
        ctx = StepContext(s, 1e-8)
        event = BoundsWatchdog().check(ctx)
        assert event.severity == "ok"
        assert event.value == 0.0

    def test_small_undershoot_warns_large_trips(self, solver):
        dog = BoundsWatchdog(y_warn=1e-6, y_trip=1e-2)
        st = solver.state
        # push one transported species slightly negative
        st.u[st.species_slice][0, 0] = -1e-5 * st.u[st.i_rho][0]
        st.mark_modified()
        assert dog.check(StepContext(solver, 1e-8)).severity == "warn"
        st.u[st.species_slice][0, 0] = -0.05 * st.u[st.i_rho][0]
        st.mark_modified()
        assert dog.check(StepContext(solver, 1e-8)).severity == "trip"

    def test_temperature_band(self, solver):
        solver.step()  # populates the Newton temperature cache
        dog = BoundsWatchdog(t_warn=(299.0, 301.0), t_trip=(100.0, 4000.0))
        event = dog.check(StepContext(solver, 5e-8))
        assert event.severity == "ok"  # pulse stays within 1 K of ambient
        tight = BoundsWatchdog(t_warn=(310.0, 320.0), t_trip=(100.0, 4000.0))
        assert tight.check(StepContext(solver, 5e-8)).severity == "warn"


class TestCFLMarginWatchdog:
    def test_dt_exactly_at_limit_is_ok(self, solver):
        """margin == 1.0 (the adaptive-dt steady state) must pass."""
        limit = solver.rhs.stable_dt(cfl=solver.config.cfl)
        event = CFLMarginWatchdog().check(StepContext(solver, limit))
        assert event.severity == "ok"
        assert event.value == pytest.approx(1.0)

    def test_slightly_over_warns(self, solver):
        limit = solver.rhs.stable_dt(cfl=solver.config.cfl)
        event = CFLMarginWatchdog().check(StepContext(solver, 1.05 * limit))
        assert event.severity == "warn"

    def test_far_over_trips(self, solver):
        limit = solver.rhs.stable_dt(cfl=solver.config.cfl)
        event = CFLMarginWatchdog().check(StepContext(solver, 1.5 * limit))
        assert event.severity == "trip"

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            CFLMarginWatchdog(warn_margin=1.5, trip_margin=1.2)


class TestConservationWatchdog:
    def test_baseline_then_drift(self, solver):
        dog = ConservationWatchdog(warn_rel=1e-12, trip_rel=1e-3)
        assert dog.check(StepContext(solver, 5e-8)).severity == "ok"
        solver.state.u[0] *= 1.0 + 1e-8  # inject a tiny mass drift
        solver.state.mark_modified()
        assert dog.check(StepContext(solver, 5e-8)).severity == "warn"
        solver.state.u[0] *= 1.01
        solver.state.mark_modified()
        assert dog.check(StepContext(solver, 5e-8)).severity == "trip"

    def test_clean_run_stays_ok(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="full")
        s.run(6)
        assert s.health.status()["conservation"] == "ok"
        assert s.health.warns == 0 and s.health.trips == 0


class TestWallTimeAnomaly:
    def _ctx(self, solver, wall):
        return StepContext(solver, 5e-8, wall_time=wall)

    def test_deterministic_outlier(self, solver):
        """A fabricated 100x wall-time spike warns; steady history ok."""
        dog = WallTimeAnomalyWatchdog(window=16, k_warn=8.0, min_samples=4)
        for i in range(8):
            event = dog.check(self._ctx(solver, 0.01 + 1e-4 * (i % 2)))
            assert event.severity == "ok"
        spike = dog.check(self._ctx(solver, 1.0))
        assert spike.severity == "warn"
        assert spike.value > 8.0
        # the spike entered the window but the median absorbs it
        assert dog.check(self._ctx(solver, 0.01)).severity == "ok"

    def test_trip_threshold_optional(self, solver):
        dog = WallTimeAnomalyWatchdog(window=8, k_warn=4.0, k_trip=8.0,
                                      min_samples=3)
        for _ in range(4):
            dog.check(self._ctx(solver, 0.01))
        assert dog.check(self._ctx(solver, 10.0)).severity == "trip"

    def test_warmup_never_fires(self, solver):
        dog = WallTimeAnomalyWatchdog(min_samples=8)
        for wall in (0.01, 5.0, 0.01, 100.0):
            assert dog.check(self._ctx(solver, wall)).severity == "ok"


class TestHealthMonitor:
    def test_cadence(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="off")
        health = HealthMonitor(s, watchdogs=[NaNSentinel()], interval=3)
        s.health = health
        s.run(7)
        assert health.checks == 2  # steps 3 and 6

    def test_check_records_step(self, solver):
        solver.run(4)
        rec = solver.health.recorder
        assert rec.steps_seen == 4
        assert rec.last.step == 4
        assert "rho" in rec.last.extrema
        assert rec.last.watchdogs["nan_sentinel"] == "ok"

    def test_interval_validated(self, solver):
        with pytest.raises(ValueError):
            HealthMonitor(solver, interval=0)

    def test_trip_dumps_before_raising(self, solver, air_mech):
        fs = SimFileSystem(lustre())
        solver.health.attach_sink(fs, "bb.jsonl")
        solver.step()
        solver.state.u[0, 0] = np.nan
        solver.state.mark_modified()
        with pytest.raises(WatchdogTripError):
            solver.health.check(5e-8)
        assert fs.exists("bb.jsonl")
        parsed = FlightRecorder.parse(fs.read_text("bb.jsonl"))
        assert parsed["summary"]["reason"] == "watchdog trip"

    def test_dump_fault_does_not_mask_trip(self, solver):
        inj = FaultInjector(seed=3)
        inj.add("fs.write", count=None, probability=1.0)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        solver.health.attach_sink(fs, "bb.jsonl")
        solver.step()
        solver.state.u[0, 0] = np.nan
        solver.state.mark_modified()
        with pytest.raises(WatchdogTripError):
            solver.health.check(5e-8)
        assert solver.health.dump_error is not None

    def test_telemetry_counters(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="on",
                          telemetry=True)
        s.run(3)
        snap = s.telemetry.snapshot()
        assert snap["metrics"]["counters"]["health.checks"] == 3
        assert "health.cfl_margin" in snap["metrics"]["gauges"]

    def test_null_monitor_is_inert(self):
        assert NULL_HEALTH.on_step(1e-8) == []
        assert NULL_HEALTH.check(1e-8) == []
        assert NULL_HEALTH.status() == {}
        assert NULL_HEALTH.dump() is None
        NULL_HEALTH.on_recovery({})


class TestNullPathIdentity:
    def test_off_is_bitwise_identical_to_full(self, air_mech, air_y):
        """Watchdogs observe; they must never perturb the solution."""
        a = _pulse_solver(air_mech, air_y, observability="off")
        b = _pulse_solver(air_mech, air_y, observability="full")
        a.run(5)
        b.run(5)
        assert np.array_equal(a.state.u, b.state.u)


class TestFlightRecorder:
    def _record(self, step, watchdogs=None):
        return StepRecord(step=step, time=step * 1e-8, dt=1e-8,
                          wall_time=0.01, extrema={"rho": (1.0, 1.2)},
                          rms={"rho": 1.1}, watchdogs=watchdogs or {})

    def test_ring_capacity(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(self._record(i))
        assert rec.steps_seen == 10
        assert len(rec.records) == 4
        assert rec.records[0].step == 6

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_jsonl_round_trip(self):
        rec = FlightRecorder(capacity=8, meta={"scheme": "rkf45"})
        for i in range(3):
            rec.record(self._record(i, {"nan_sentinel": "ok"}))
        rec.record_recovery({"at_step": 2, "restored_step": 0})
        text = rec.to_jsonl("unit test")
        parsed = FlightRecorder.parse(text)
        assert parsed["header"]["version"] == SCHEMA_VERSION
        assert parsed["header"]["scheme"] == "rkf45"
        assert [s["step"] for s in parsed["steps"]] == [0, 1, 2]
        assert parsed["recoveries"][0]["restored_step"] == 0
        assert parsed["summary"]["reason"] == "unit test"
        assert parsed["summary"]["steps_seen"] == 3

    def test_every_line_is_json(self):
        rec = FlightRecorder(capacity=4)
        rec.record(self._record(1))
        for line in rec.to_jsonl("x").strip().splitlines():
            json.loads(line)  # raises on malformed output

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not JSON"):
            FlightRecorder.parse('{"kind": "header", "version": 1}\nnope\n')

    def test_parse_rejects_missing_header(self):
        with pytest.raises(ValueError, match="no header"):
            FlightRecorder.parse('{"kind": "step", "step": 1}\n')

    def test_parse_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="schema"):
            FlightRecorder.parse('{"kind": "header", "version": 99}\n')

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            FlightRecorder.parse(
                '{"kind": "header", "version": 1}\n{"kind": "mystery"}\n'
            )

    def test_dump_through_filesystem(self):
        fs = SimFileSystem(lustre())
        rec = FlightRecorder(capacity=4)
        rec.record(self._record(1))
        rec.dump(fs, "fr.jsonl", reason="test")
        assert rec.dumps == 1
        loaded = FlightRecorder.load(fs, "fr.jsonl")
        assert loaded["steps"][0]["step"] == 1

    def test_dump_counts_telemetry(self):
        tel = Telemetry()
        fs = SimFileSystem(lustre())
        rec = FlightRecorder(capacity=4, telemetry=tel)
        rec.record(self._record(1))
        rec.dump(fs, "fr.jsonl")
        counters = tel.snapshot()["metrics"]["counters"]
        assert counters["flightrecorder.dumps"] == 1
        assert counters["flightrecorder.bytes"] > 0

    def test_series_extraction(self):
        rec = FlightRecorder(capacity=8)
        for i in range(3):
            rec.record(self._record(i))
        assert rec.series("dt") == [1e-8] * 3
        assert rec.extrema_series("rho", 1) == [1.2] * 3
        assert math.isnan(rec.extrema_series("nope", 1)[0])


class TestTripRecoveryAcceptance:
    """The issue's acceptance path: a seeded NaN (silent corruption via
    the fault-injection campaign) trips the NaN watchdog within one
    monitor interval, dumps a parseable flight record, and
    run_resilient recovers by rollback-and-replay."""

    def test_nan_trip_rolls_back_and_completes(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="on")
        fs = SimFileSystem(lustre())
        inj = FaultInjector(seed=11)
        inj.add("solver.state", after=5, count=1)
        report = s.run_resilient(fs, 12, checkpoint_interval=4, injector=inj)
        assert report.recoveries == 1
        assert "WatchdogTripError" in report.history[0].error
        assert "nan_sentinel" in report.history[0].error
        # trip at step 6 (one step after injection at step 6's start);
        # rollback to the step-4 checkpoint, replay
        assert report.history[0].restored_step == 4
        assert report.replayed_steps == 2
        assert s.step_count == 12
        assert np.isfinite(s.state.u).all()

    def test_recovered_run_matches_undisturbed(self, air_mech, air_y):
        disturbed = _pulse_solver(air_mech, air_y, observability="on")
        fs = SimFileSystem(lustre())
        inj = FaultInjector(seed=5)
        inj.add("solver.state", after=3, count=1)
        disturbed.run_resilient(fs, 10, checkpoint_interval=5, injector=inj)

        clean = _pulse_solver(air_mech, air_y, observability="off")
        clean.run_resilient(SimFileSystem(lustre()), 10,
                            checkpoint_interval=5)
        assert np.array_equal(disturbed.state.u, clean.state.u)

    def test_flight_record_captures_trip_and_recovery(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="on")
        fs = SimFileSystem(lustre())
        inj = FaultInjector(seed=2)
        inj.add("solver.state", after=4, count=1)
        s.run_resilient(fs, 10, checkpoint_interval=3, injector=inj)
        parsed = FlightRecorder.load(fs, "flight_record.jsonl")
        assert parsed["summary"]["trips"] == 1
        assert parsed["summary"]["recoveries"] == 1
        assert parsed["recoveries"][0]["restored_step"] == 3
        trip_steps = [r for r in parsed["steps"]
                      if r["watchdogs"].get("nan_sentinel") == "trip"]
        assert len(trip_steps) == 1

    def test_watchdog_trip_error_is_typed(self):
        from repro.resilience.supervisor import RECOVERABLE

        assert WatchdogTripError in RECOVERABLE
        err = WatchdogTripError([], step=7, time=1e-6)
        assert err.step == 7
        assert "step 7" in str(err)


class TestFusion:
    def _snapshot(self, spans):
        return {"spans": {k: {"exclusive": v, "count": 1}
                          for k, v in spans.items()},
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}}}

    def test_fuse_statistics(self):
        snaps = [self._snapshot({"REACTION": 1.0, "DERIV": 2.0}),
                 self._snapshot({"REACTION": 3.0, "DERIV": 2.0})]
        fused = fuse_profiles(snaps)
        row = fused.rows["REACTION"]
        assert row.tmin == 1.0 and row.tmax == 3.0 and row.tmean == 2.0
        assert row.imbalance == pytest.approx(1.5)
        assert fused.kernels()[0] == "DERIV" or fused.kernels()[0] == "REACTION"

    def test_absent_kernel_counts_as_zero(self):
        snaps = [self._snapshot({"REACTION": 2.0}), self._snapshot({})]
        fused = fuse_profiles(snaps)
        assert list(fused.loads("REACTION")) == [2.0, 0.0]
        assert fused.imbalance("REACTION") == pytest.approx(2.0)

    def test_matches_perfmodel_imbalance(self):
        """The fused imbalance IS chemistry_imbalance — same statistic."""
        from repro.perfmodel.loadbalance import (
            chemistry_imbalance,
            measured_imbalance,
        )

        loads = [0.5, 1.0, 1.5, 2.0]
        snaps = [self._snapshot({"REACTION_RATES": v}) for v in loads]
        fused = fuse_profiles(snaps)
        expected = chemistry_imbalance(loads)
        assert fused.imbalance("REACTION_RATES") == pytest.approx(expected)
        assert measured_imbalance(fused) == pytest.approx(expected)
        assert measured_imbalance(loads) == pytest.approx(expected)

    def test_measured_speedup(self):
        from repro.perfmodel.loadbalance import measured_speedup

        assert measured_speedup([4.0, 1.0], [2.5, 2.5]) == pytest.approx(1.6)
        assert measured_speedup([1.0], [0.0]) == 1.0

    def test_to_rank_profiles(self):
        from repro.perfmodel.profiler import RankProfile

        snaps = [self._snapshot({"A": 1.0}), self._snapshot({"A": 3.0})]
        profiles = fuse_profiles(snaps).to_rank_profiles()
        assert all(isinstance(p, RankProfile) for p in profiles)
        assert profiles[1].exclusive["A"] == 3.0

    def test_gather_bytes_round_trip(self):
        world = SimMPI(3)
        payloads = [b"rank0", b"rank1-data", b"r2"]
        out = world.gather_bytes(payloads, root=0, tag=99)
        assert out == payloads
        assert world.log.count == 2  # non-root ranks only

    def test_gather_bytes_size_mismatch(self):
        with pytest.raises(ValueError, match="one payload per rank"):
            SimMPI(2).gather_bytes([b"x"])

    def test_parallel_run_fusion_consistent_with_loadbalance(
            self, h2_mech, h2_air_stoich):
        """Acceptance: fused profile of a 2x2x1 parallel run agrees with
        the perfmodel imbalance statistic on the same loads."""
        from repro.perfmodel.loadbalance import (
            chemistry_imbalance,
            measured_imbalance,
        )

        grid = Grid((24, 24), (2e-3, 2e-3), periodic=(True, True))
        xx, yy = grid.meshgrid()
        T = 900.0 + 400.0 * np.exp(
            -((xx - 1e-3) ** 2 + (yy - 1e-3) ** 2) / (2 * (3e-4) ** 2))
        Yf = h2_air_stoich[:, None, None] * np.ones((1, 24, 24))
        rho = h2_mech.density(P_ATM, T, Yf)
        state = State.from_primitive(h2_mech, grid, rho, [1.0, 0.5], T, Yf)
        world = SimMPI(4)
        d = CartesianDecomposition((24, 24), (2, 2), periodic=(True, True))
        par = ParallelPeriodicSolver(h2_mech, grid, d, world, reacting=True,
                                     rank_telemetry=True)
        par.set_state(state.u)
        par.run(2, 2e-8)
        fused = par.fused_profile()
        assert fused.n_ranks == 4
        assert "REACTION_RATES" in fused
        loads = fused.loads("REACTION_RATES")
        assert (loads > 0.0).all()
        assert fused.imbalance("REACTION_RATES") == pytest.approx(
            chemistry_imbalance(loads))
        assert measured_imbalance(fused) == pytest.approx(
            chemistry_imbalance(loads))
        # the fusion gather shipped one snapshot per non-root rank
        fusion_msgs = [r for r in world.log.records if r.tag == 9102]
        assert len(fusion_msgs) == 3
        table = fused.table()
        assert "REACTION_RATES" in table and "imb" in table
        report = fused.load_balance_report()
        assert "overall imbalance" in report

    def test_fused_profile_requires_rank_telemetry(self, h2_mech):
        grid = Grid((24, 24), (2e-3, 2e-3), periodic=(True, True))
        d = CartesianDecomposition((24, 24), (2, 2), periodic=(True, True))
        par = ParallelPeriodicSolver(h2_mech, grid, d, SimMPI(4),
                                     reacting=False)
        with pytest.raises(ValueError, match="rank_telemetry"):
            par.fused_profile()


class TestParallelHealth:
    def test_parallel_watchdogs_on_gathered_state(self, h2_mech,
                                                  h2_air_stoich):
        grid = Grid((24, 24), (2e-3, 2e-3), periodic=(True, True))
        Yf = h2_air_stoich[:, None, None] * np.ones((1, 24, 24))
        T = 900.0 * np.ones((24, 24))
        rho = h2_mech.density(P_ATM, T, Yf)
        state = State.from_primitive(h2_mech, grid, rho, [1.0, 0.5], T, Yf)
        world = SimMPI(4)
        d = CartesianDecomposition((24, 24), (2, 2), periodic=(True, True))
        par = ParallelPeriodicSolver(h2_mech, grid, d, world, reacting=False,
                                     observability="on")
        par.set_state(state.u)
        par.run(2, 2e-8)
        status = par.health.status()
        assert status["nan_sentinel"] == "ok"
        assert "cfl_margin" not in status  # explicit-dt solver: no CFL dog

    def test_parallel_nan_trips(self, h2_mech, h2_air_stoich):
        grid = Grid((24, 24), (2e-3, 2e-3), periodic=(True, True))
        Yf = h2_air_stoich[:, None, None] * np.ones((1, 24, 24))
        T = 900.0 * np.ones((24, 24))
        rho = h2_mech.density(P_ATM, T, Yf)
        state = State.from_primitive(h2_mech, grid, rho, [1.0, 0.5], T, Yf)
        world = SimMPI(4)
        d = CartesianDecomposition((24, 24), (2, 2), periodic=(True, True))
        par = ParallelPeriodicSolver(h2_mech, grid, d, world, reacting=False,
                                     observability="on")
        par.set_state(state.u)
        par.step(2e-8)
        par.locals[2][0, 0, 0] = np.nan  # poison one rank's block
        with pytest.raises(WatchdogTripError) as err:
            par.health.check(2e-8)
        assert err.value.events[0].watchdog == "nan_sentinel"


class TestRender:
    def test_sparkline_shape(self):
        assert sparkline([1, 2, 3]) == "▁▄█"
        assert sparkline([]) == ""
        assert sparkline([2.0, 2.0]) == "▅▅"
        out = sparkline([1.0, float("nan"), 3.0])
        assert out[1] == "·"
        assert len(sparkline(range(100), width=32)) == 32

    def test_run_monitor_interval(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="on")
        stream = __import__("io").StringIO()
        mon = RunMonitor(s.health.recorder, interval=2, stream=stream)
        s.health.attach_monitor(mon)
        s.run(5)
        assert mon.renders == 2  # steps 2 and 4
        text = stream.getvalue()
        assert "simulation health observatory" in text
        assert "nan_sentinel=ok" in text

    def test_dashboard_contains_step_table_and_sparklines(self, air_mech,
                                                          air_y):
        s = _pulse_solver(air_mech, air_y, observability="on")
        s.run(4)
        text = RunMonitor(s.health.recorder).render()
        assert "step 4" in text
        assert "dt" in text and "wall[s]" in text
        assert "retained 4 steps" in text

    def test_html_report_is_self_contained(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="on")
        s.run(3)
        rows = [r.as_dict() for r in s.health.recorder.records]
        html = html_report(rows)
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "<style>" in html
        assert "http://" not in html and "https://" not in html  # no CDN
        assert "nan_sentinel" in html

    def test_write_html_through_filesystem(self, air_mech, air_y):
        s = _pulse_solver(air_mech, air_y, observability="on")
        s.run(3)
        fs = SimFileSystem(lustre())
        write_html_report(fs, "observatory.html", recorder=s.health.recorder)
        assert fs.exists("observatory.html")
        assert "<!doctype html>" in fs.read_text("observatory.html")

    def test_offline_replay_from_dump(self, air_mech, air_y):
        """Acceptance: the crash dump replays into ASCII + HTML offline."""
        s = _pulse_solver(air_mech, air_y, observability="on")
        fs = SimFileSystem(lustre())
        inj = FaultInjector(seed=4)
        inj.add("solver.state", after=2, count=1)
        s.run_resilient(fs, 8, checkpoint_interval=3, injector=inj)
        rep = replay_report(fs, "flight_record.jsonl")
        assert "flight-record replay" in rep["ascii"]
        assert "recovery" in rep["ascii"]
        assert rep["html"].startswith("<!doctype html>")
        assert rep["parsed"]["summary"]["recoveries"] == 1

    def test_empty_dashboard(self):
        assert "no steps recorded" in RunMonitor(FlightRecorder()).render()


class TestDashboardIntegration:
    def test_update_health(self, air_mech, air_y):
        from repro.workflow.dashboard import Dashboard

        s = _pulse_solver(air_mech, air_y, observability="on")
        s.run(3)
        dash = Dashboard()
        dash.submit_job("j1", "jaguar", "obs")
        dash.set_job_state("j1", "running")
        dash.update_health("j1", s.health)
        text = dash.render_text()
        assert "[health]" in text
        assert "nan_sentinel=ok" in text
        assert dash.jobs["j1"].state == "running"

    def test_trip_flips_job_to_failed(self, air_mech, air_y):
        from repro.workflow.dashboard import Dashboard

        s = _pulse_solver(air_mech, air_y, observability="on")
        s.step()
        s.state.u[0, 0] = np.nan
        s.state.mark_modified()
        with pytest.raises(WatchdogTripError):
            s.health.check(5e-8)
        dash = Dashboard()
        dash.submit_job("j2", "jaguar", "obs")
        dash.update_health("j2", s.health)
        assert dash.jobs["j2"].state == "failed"

    def test_ingest_flight_record(self, air_mech, air_y):
        from repro.workflow.dashboard import Dashboard

        s = _pulse_solver(air_mech, air_y, observability="on")
        fs = SimFileSystem(lustre())
        s.health.attach_sink(fs)
        s.run(4)
        s.health.dump("end")
        parsed = FlightRecorder.load(fs, "flight_record.jsonl")
        dash = Dashboard()
        dash.ingest_flight_record("j3", parsed)
        assert dash.latest("rho") is not None
        assert dash.health["j3"]["checks"] == 4


class TestTraceRecordRoundTrip:
    """Flight-recorder persistence of distributed-tracing state: trace
    events attached to a step's telemetry delta survive the JSONL dump
    and come back with ids and causal parent links intact."""

    def _record_with_trace(self):
        from repro.telemetry.tracing import TraceLog

        clock = iter(float(i) for i in range(100))
        log = TraceLog(clock=lambda: next(clock))
        outer = log.begin_span("STEP", rank=0)
        log.end_span(log.begin_span("RHS", rank=0))
        log.end_span(outer)
        ctx = log.record_send(0, 1, 700, 128)
        log.record_recv(1, 0, 700, 128, ctx=ctx)
        return StepRecord(
            step=3, time=3e-8, dt=1e-8, wall_time=0.01,
            extrema={"rho": (1.0, 1.2)}, rms={"rho": 1.1},
            watchdogs={"nan_sentinel": "ok"},
            telemetry={"trace": log.snapshot()},
        )

    def test_jsonl_round_trip_preserves_trace_links(self):
        rec = FlightRecorder(capacity=8)
        rec.record(self._record_with_trace())
        parsed = FlightRecorder.parse(rec.to_jsonl("trace round-trip"))
        trace = parsed["steps"][0]["telemetry"]["trace"]
        assert trace["rank"] == -1
        events = {e["id"]: e for e in trace["events"]}
        assert len(events) == 4
        by_name = {e["name"]: e for e in trace["events"] if e["kind"] == "span"}
        assert by_name["RHS"]["parent"] == by_name["STEP"]["id"]
        send = next(e for e in trace["events"] if e["kind"] == "send")
        recv = next(e for e in trace["events"] if e["kind"] == "recv")
        assert recv["parent"] == send["id"]
        assert recv["logical"] > send["logical"]

    def test_dumped_trace_stitches_into_a_timeline(self):
        from repro.observability import timeline

        fs = SimFileSystem(lustre())
        rec = FlightRecorder(capacity=8)
        rec.record(self._record_with_trace())
        rec.dump(fs, "fr.jsonl", reason="test")
        parsed = FlightRecorder.load(fs, "fr.jsonl")
        events = timeline.stitch(
            [parsed["steps"][0]["telemetry"]["trace"]])
        trace = timeline.export_chrome_trace(events)
        stats = timeline.validate_chrome_trace(trace)
        assert stats["flows"] == 1

    def test_record_without_trace_unchanged(self):
        rec = FlightRecorder(capacity=4)
        rec.record(StepRecord(step=1, time=1e-8, dt=1e-8))
        parsed = FlightRecorder.parse(rec.to_jsonl("x"))
        assert "telemetry" not in parsed["steps"][0]


class TestOversubscriptionWarning:
    """Satellite: the transport.oversubscribed gauge surfaces in the
    ASCII dashboard and HTML report with an explicit warning line."""

    def _rows(self, oversub=None):
        rec = FlightRecorder(capacity=4)
        telemetry = None
        if oversub is not None:
            telemetry = {"metrics": {"gauges":
                                     {"transport.oversubscribed": oversub}}}
        rec.record(StepRecord(step=1, time=1e-8, dt=1e-8, wall_time=0.01,
                              extrema={"rho": (1.0, 1.2)}, rms={"rho": 1.1},
                              watchdogs={"nan_sentinel": "ok"},
                              telemetry=telemetry))
        return [r.as_dict() for r in rec.records]

    def test_ascii_warns_from_recorded_rows(self):
        from repro.observability.render import render_dashboard

        text = render_dashboard(self._rows(oversub=3))
        assert "transport oversubscribed: 3 rank(s)" in text
        assert "wall-time signals suspect" in text

    def test_ascii_quiet_without_gauge(self):
        from repro.observability.render import render_dashboard

        assert "oversubscribed" not in render_dashboard(self._rows())

    def test_live_telemetry_preferred(self):
        from repro.observability.render import render_dashboard

        tel = Telemetry()
        tel.gauge("transport.oversubscribed").set(2)
        text = render_dashboard(self._rows(), telemetry=tel)
        assert "transport oversubscribed: 2 rank(s)" in text

    def test_zero_gauge_stays_quiet(self):
        tel = Telemetry()
        tel.gauge("transport.oversubscribed").set(0)
        from repro.observability.render import render_dashboard

        assert "oversubscribed" not in render_dashboard(self._rows(),
                                                        telemetry=tel)

    def test_run_monitor_picks_up_recorder_telemetry(self):
        tel = Telemetry()
        tel.gauge("transport.oversubscribed").set(4)
        rec = FlightRecorder(capacity=4, telemetry=tel)
        rec.record(StepRecord(step=1, time=1e-8, dt=1e-8))
        text = RunMonitor(rec).render()
        assert "transport oversubscribed: 4 rank(s)" in text

    def test_html_report_warns(self):
        tel = Telemetry()
        tel.gauge("transport.oversubscribed").set(2)
        html = html_report(self._rows(), telemetry=tel)
        assert "class='warn'" in html
        assert "transport oversubscribed: 2 rank(s)" in html

    def test_html_report_quiet_without_gauge(self):
        assert "oversubscribed" not in html_report(self._rows())
