"""Tests for the simulated-MPI parallel substrate."""

import numpy as np
import pytest

from repro.core import Grid, SolverConfig, S3DSolver, State, ic
from repro.core.config import periodic_boundaries
from repro.core.derivatives import DerivativeOperator
from repro.core.filters import FilterOperator
from repro.parallel import (
    CartesianDecomposition,
    HaloExchanger,
    SimMPI,
    block_range,
)
from repro.parallel.solver import (
    ParallelPeriodicSolver,
    parallel_derivative,
    parallel_filter,
)
from repro.transport import ConstantLewisTransport
from repro.util.constants import P_ATM


class TestSimMPI:
    def test_send_recv(self):
        world = SimMPI(2)
        world.comm(0).Send(np.arange(4.0), dest=1, tag=7)
        out = world.comm(1).Recv(source=0, tag=7)
        np.testing.assert_array_equal(out, np.arange(4.0))

    def test_message_ordering_fifo(self):
        world = SimMPI(2)
        c0 = world.comm(0)
        c0.Send(np.array([1.0]), dest=1, tag=0)
        c0.Send(np.array([2.0]), dest=1, tag=0)
        c1 = world.comm(1)
        assert c1.Recv(source=0, tag=0)[0] == 1.0
        assert c1.Recv(source=0, tag=0)[0] == 2.0

    def test_recv_without_message_raises(self):
        world = SimMPI(2)
        with pytest.raises(RuntimeError, match="no pending message"):
            world.comm(0).Recv(source=1, tag=0)

    def test_send_copies_buffer(self):
        world = SimMPI(2)
        buf = np.zeros(3)
        world.comm(0).Send(buf, dest=1)
        buf[:] = 9.0
        np.testing.assert_array_equal(world.comm(1).Recv(source=0), np.zeros(3))

    def test_probe(self):
        world = SimMPI(2)
        assert not world.comm(1).probe(source=0)
        world.comm(0).Send(np.zeros(1), dest=1)
        assert world.comm(1).probe(source=0)

    def test_log_accounting(self):
        world = SimMPI(3)
        world.comm(0).Send(np.zeros(10), dest=1)
        world.comm(1).Send(np.zeros(5), dest=2)
        assert world.log.count == 2
        assert world.log.total_bytes == 15 * 8
        assert world.log.by_pair()[(0, 1)] == 80

    def test_invalid_rank(self):
        world = SimMPI(2)
        with pytest.raises(ValueError):
            world.comm(5)
        with pytest.raises(ValueError):
            world.comm(0).Send(np.zeros(1), dest=9)

    def test_allreduce(self):
        world = SimMPI(3)
        results = [world.comm(r).allreduce_sum(r + 1) for r in range(3)]
        assert results[:2] == [None, None]
        assert results[2] == 6


class TestBlockRange:
    def test_even_split(self):
        assert block_range(12, 3, 0) == (0, 4)
        assert block_range(12, 3, 2) == (8, 12)

    def test_remainder_to_leading(self):
        assert block_range(10, 3, 0) == (0, 4)
        assert block_range(10, 3, 1) == (4, 7)
        assert block_range(10, 3, 2) == (7, 10)

    def test_covers_exactly(self):
        parts = [block_range(17, 5, i) for i in range(5)]
        assert parts[0][0] == 0 and parts[-1][1] == 17
        for a, b in zip(parts, parts[1:]):
            assert a[1] == b[0]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            block_range(10, 3, 3)


class TestDecomposition:
    def test_rank_coords_roundtrip(self):
        d = CartesianDecomposition((8, 8, 8), (2, 2, 2))
        for rank in range(8):
            assert d.rank_of(d.coords(rank)) == rank

    def test_neighbors_periodic(self):
        d = CartesianDecomposition((8,), (4,), periodic=(True,))
        assert d.neighbor(0, 0, -1) == 3
        assert d.neighbor(3, 0, 1) == 0

    def test_neighbors_wall(self):
        d = CartesianDecomposition((8,), (4,), periodic=(False,))
        assert d.neighbor(0, 0, -1) is None
        assert d.neighbor(3, 0, 1) is None

    def test_scatter_gather_roundtrip(self):
        d = CartesianDecomposition((9, 7), (3, 2))
        rng = np.random.default_rng(0)
        a = rng.random((9, 7))
        np.testing.assert_array_equal(d.gather(d.scatter(a)), a)

    def test_scatter_with_leading_axis(self):
        d = CartesianDecomposition((6, 6), (2, 3))
        a = np.random.default_rng(1).random((4, 6, 6))
        back = d.gather(d.scatter(a, leading_axes=1), leading_axes=1)
        np.testing.assert_array_equal(back, a)

    def test_is_uniform(self):
        assert CartesianDecomposition((8, 8), (2, 2)).is_uniform()
        assert not CartesianDecomposition((9, 8), (2, 2)).is_uniform()

    def test_invalid_proc_count(self):
        with pytest.raises(ValueError):
            CartesianDecomposition((4,), (8,))


class TestHaloExchange:
    def test_matches_global_slicing_periodic(self):
        d = CartesianDecomposition((16, 12), (2, 2), periodic=(True, True))
        world = SimMPI(4)
        h = HaloExchanger(d, world, width=3)
        a = np.random.default_rng(2).random((16, 12))
        ext = h.exchange(d.scatter(a))
        padded = np.pad(a, 3, mode="wrap")
        for rank in range(4):
            sl = d.local_slices(rank)
            want = padded[
                sl[0].start : sl[0].stop + 6, sl[1].start : sl[1].stop + 6
            ]
            np.testing.assert_array_equal(ext[rank], want)

    def test_wall_boundaries_no_ghosts(self):
        d = CartesianDecomposition((8,), (2,), periodic=(False,))
        world = SimMPI(2)
        h = HaloExchanger(d, world, width=2)
        a = np.arange(8.0)
        ext = h.exchange(d.scatter(a))
        assert ext[0].shape == (6,)  # 4 owned + 2 right ghosts only
        np.testing.assert_array_equal(ext[0][:4], a[:4])
        np.testing.assert_array_equal(ext[0][4:], a[4:6])

    def test_message_size_matches_halo(self):
        d = CartesianDecomposition((16,), (2,), periodic=(True,))
        world = SimMPI(2)
        h = HaloExchanger(d, world, width=4)
        h.exchange(d.scatter(np.zeros(16)))
        sizes = set(world.log.message_sizes())
        assert sizes == {4 * 8}

    def test_world_size_mismatch(self):
        d = CartesianDecomposition((8,), (2,))
        with pytest.raises(ValueError, match="world size"):
            HaloExchanger(d, SimMPI(3))


class TestDistributedOperators:
    def test_parallel_derivative_bitwise(self):
        rng = np.random.default_rng(3)
        f = rng.random((32, 24))
        op = DerivativeOperator(32, 0.1, periodic=True)
        ref = op.apply(f, axis=0)
        d = CartesianDecomposition((32, 24), (4, 2), periodic=(True, True))
        par = parallel_derivative(f, d, SimMPI(8), axis=0, spacing=0.1)
        np.testing.assert_array_equal(par, ref)

    def test_parallel_filter_bitwise(self):
        rng = np.random.default_rng(4)
        f = rng.random((20, 30))
        ref = FilterOperator(30, periodic=True, alpha=0.5).apply(f, axis=1)
        d = CartesianDecomposition((20, 30), (2, 3), periodic=(True, True))
        par = parallel_filter(f, d, SimMPI(6), axis=1, alpha=0.5)
        np.testing.assert_array_equal(par, ref)

    def test_s3d_message_scale(self):
        """A 50^3 block exchanging 4 ghost layers of one variable moves
        ~80 kB per face message — the figure quoted in §2.6."""
        d = CartesianDecomposition((100, 50, 50), (2, 1, 1), periodic=(True, True, True))
        world = SimMPI(2)
        h = HaloExchanger(d, world, width=4)
        h.exchange(d.scatter(np.zeros((100, 50, 50))))
        per_face = [r for r in world.log.records if r.tag in (0, 1)]
        assert per_face[0].nbytes == 4 * 50 * 50 * 8  # 80 kB


class TestParallelSolverEquivalence:
    def test_matches_serial_reacting_viscous(self, h2_mech, h2_air_stoich):
        grid = Grid((24, 24), (2e-3, 2e-3), periodic=(True, True))
        xx, yy = grid.meshgrid()
        T = 900.0 + 500.0 * np.exp(
            -((xx - 1e-3) ** 2 + (yy - 1e-3) ** 2) / (2 * (3e-4) ** 2)
        )
        Yf = h2_air_stoich[:, None, None] * np.ones((1, 24, 24))
        rho = h2_mech.density(P_ATM, T, Yf)
        state = State.from_primitive(h2_mech, grid, rho, [1.0, 0.5], T, Yf)
        tr = ConstantLewisTransport(h2_mech)
        cfg = SolverConfig(boundaries=periodic_boundaries(2), dt=2e-8,
                           filter_interval=1, filter_alpha=0.2, scheme="ck45")
        serial = S3DSolver(state.copy(), cfg, transport=tr, reacting=True)
        for _ in range(3):
            serial.step()
        world = SimMPI(4)
        d = CartesianDecomposition((24, 24), (2, 2), periodic=(True, True))
        par = ParallelPeriodicSolver(h2_mech, grid, d, world, transport=tr,
                                     reacting=True, scheme="ck45",
                                     filter_alpha=0.2)
        par.set_state(state.u)
        for _ in range(3):
            par.step(2e-8)
        up = par.gather_state()
        ref = serial.state.u
        scale = np.abs(ref).reshape(ref.shape[0], -1).max(axis=1)
        rel = (np.abs(up - ref).reshape(ref.shape[0], -1).max(axis=1)
               / np.maximum(scale, 1e-300))
        assert rel.max() < 1e-10

    def test_requires_periodic(self, h2_mech):
        grid = Grid((24, 24), (1e-3, 1e-3), periodic=(True, False))
        d = CartesianDecomposition((24, 24), (2, 2), periodic=(True, False))
        with pytest.raises(ValueError, match="periodic"):
            ParallelPeriodicSolver(h2_mech, grid, d, SimMPI(4))
