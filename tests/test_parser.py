"""Tests for the CHEMKIN-style mechanism parser."""

import numpy as np
import pytest

from repro.chemistry.parser import MechanismParseError, parse_mechanism
from repro.util.constants import CAL_TO_J

SIMPLE = """
! a toy hydrogen mechanism
ELEMENTS
H O N
END
SPECIES
H2 O2 H2O H O OH HO2 H2O2 N2
END
REACTIONS CAL/MOLE
H+O2<=>O+OH            3.547E+15  -0.406  16599.
O+H2<=>H+OH            0.508E+05   2.67    6290.
H2+M<=>H+H+M           4.577E+19  -1.40  104380.
    H2/2.5/ H2O/12.0/
H+O2(+M)<=>HO2(+M)     1.475E+12   0.60       0.
    H2/2.0/ H2O/11.0/ O2/0.78/
    LOW /6.366E+20 -1.72 524.8/
    TROE /0.8 1.0E-30 1.0E+30/
HO2+HO2<=>H2O2+O2      4.200E+14   0.00   11982.
    DUPLICATE
HO2+HO2<=>H2O2+O2      1.300E+11   0.00   -1629.3
    DUPLICATE
H2O2+H=>H2O+OH         0.241E+14   0.00    3970.
END
"""


class TestParser:
    def test_species_list(self):
        mech = parse_mechanism(SIMPLE)
        assert mech.species_names == ["H2", "O2", "H2O", "H", "O", "OH", "HO2", "H2O2", "N2"]

    def test_reaction_count(self):
        mech = parse_mechanism(SIMPLE)
        assert mech.n_reactions == 7

    def test_arrhenius_units_converted(self):
        mech = parse_mechanism(SIMPLE)
        r = mech.reactions[0]  # bimolecular
        assert r.rate.A == pytest.approx(3.547e15 * 1e-6)
        assert r.rate.n == pytest.approx(-0.406)
        assert r.rate.Ea == pytest.approx(16599.0 * CAL_TO_J)

    def test_third_body_efficiencies(self):
        mech = parse_mechanism(SIMPLE)
        r = mech.reactions[2]
        eff = r.third_body.as_dict()
        assert eff == {"H2": 2.5, "H2O": 12.0}
        # dissociation with M: forward order 2 -> A converted by 1e-6
        assert r.rate.A == pytest.approx(4.577e19 * 1e-6)

    def test_falloff_parsed(self):
        mech = parse_mechanism(SIMPLE)
        r = mech.reactions[3]
        assert r.falloff is not None
        assert r.falloff.low.A == pytest.approx(6.366e20 * 1e-12)  # order 2 + M
        assert r.falloff.troe[0] == pytest.approx(0.8)

    def test_duplicates_marked(self):
        mech = parse_mechanism(SIMPLE)
        assert mech.reactions[4].duplicate and mech.reactions[5].duplicate

    def test_irreversible_arrow(self):
        mech = parse_mechanism(SIMPLE)
        assert mech.reactions[6].reversible is False

    def test_comments_stripped(self):
        mech = parse_mechanism("SPECIES\nO2 N2 ! trailing\nEND")
        assert mech.species_names == ["O2", "N2"]

    def test_matches_builtin_mechanism_rates(self, h2_mech):
        """The parsed toy subset reproduces the built-in rate constants."""
        mech = parse_mechanism(SIMPLE)
        T = np.array([1000.0, 1500.0])
        built = h2_mech.reactions[0].rate(T)
        parsed = mech.reactions[0].rate(T)
        np.testing.assert_allclose(parsed, built, rtol=1e-12)


class TestParserErrors:
    def test_missing_species_section(self):
        with pytest.raises(MechanismParseError, match="no SPECIES"):
            parse_mechanism("ELEMENTS\nH\nEND")

    def test_undeclared_species(self):
        text = "SPECIES\nO2 N2\nEND\nREACTIONS\nO2+CO=>CO2 1.0 0.0 0.0\nEND"
        with pytest.raises(MechanismParseError, match="undeclared species"):
            parse_mechanism(text)

    def test_no_arrow(self):
        text = "SPECIES\nO2 N2\nEND\nREACTIONS\nO2 N2 1.0 0.0 0.0\nEND"
        with pytest.raises(MechanismParseError):
            parse_mechanism(text)

    def test_duplicate_before_reaction(self):
        text = "SPECIES\nO2\nEND\nREACTIONS\nDUPLICATE\nEND"
        with pytest.raises(MechanismParseError, match="DUPLICATE before"):
            parse_mechanism(text)

    def test_falloff_missing_low(self):
        text = "SPECIES\nH O2 HO2\nEND\nREACTIONS\nH+O2(+M)<=>HO2(+M) 1.0 0.0 0.0\nEND"
        with pytest.raises(MechanismParseError, match="LOW"):
            parse_mechanism(text)

    def test_unbalanced_third_body(self):
        text = "SPECIES\nH2 H\nEND\nREACTIONS\nH2+M<=>H+H 1.0 0.0 0.0\nEND"
        with pytest.raises(MechanismParseError, match="unbalanced"):
            parse_mechanism(text)
