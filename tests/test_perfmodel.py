"""Tests for the §3-§4 performance model: the Figs 1-3 observables."""

import numpy as np
import pytest

from repro.perfmodel import (
    XT3,
    XT4,
    HybridSystem,
    SimProfiler,
    hybrid_weak_scaling,
    kernel_time,
    profile_hybrid_run,
    s3d_kernel_inventory,
    weak_scaling_curve,
)
from repro.perfmodel.loadbalance import balance_curve, predicted_jaguar_cost, rebalanced_cost
from repro.perfmodel.profiler import class_means
from repro.perfmodel.roofline import (
    achieved_flops_fraction,
    is_memory_bound,
    total_time,
)


class TestNodeModels:
    def test_bandwidths(self):
        assert XT3.mem_bandwidth == 6.4e9
        assert XT4.mem_bandwidth == 10.6e9

    def test_peak_flops(self):
        # 2.6 GHz dual-core, 2 flops/cycle
        assert XT3.peak_flops == pytest.approx(10.4e9)

    def test_xt4_better_balance(self):
        assert XT4.balance > XT3.balance

    def test_hybrid_allocation_prefers_xt4(self):
        sys_ = HybridSystem()
        xt4, xt3 = sys_.allocation(4096)
        assert xt4 == 4096 and xt3 == 0
        xt4, xt3 = sys_.allocation(12000)
        assert xt4 == 2 * 5294
        assert xt3 == 12000 - 2 * 5294

    def test_allocation_overflow(self):
        with pytest.raises(ValueError):
            HybridSystem().allocation(10**6)

    def test_xt4_fraction(self):
        assert HybridSystem().xt4_fraction == pytest.approx(0.46, abs=0.01)


class TestRoofline:
    def test_reproduces_paper_node_times(self):
        """Fig 1's levels: ~68 us on XT3, ~55 us on XT4 per point/step."""
        inv = s3d_kernel_inventory()
        assert total_time(inv, XT3) * 1e6 == pytest.approx(68.0, rel=0.02)
        assert total_time(inv, XT4) * 1e6 == pytest.approx(55.0, rel=0.02)

    def test_xt3_penalty_about_24_percent(self):
        inv = s3d_kernel_inventory()
        ratio = total_time(inv, XT3) / total_time(inv, XT4)
        assert ratio == pytest.approx(1.24, abs=0.02)

    def test_compute_kernels_identical_across_nodes(self):
        """Fig 2: REACTION_RATES takes nearly identical time on both."""
        inv = s3d_kernel_inventory()
        rr = next(k for k in inv if k.name == "REACTION_RATES")
        assert kernel_time(rr, XT3) == pytest.approx(kernel_time(rr, XT4))
        assert not is_memory_bound(rr, XT3)

    def test_memory_kernels_slower_on_xt3(self):
        inv = s3d_kernel_inventory()
        diff = next(k for k in inv if k.name == "COMPUTESPECIESDIFFFLUX")
        assert is_memory_bound(diff, XT3) and is_memory_bound(diff, XT4)
        assert kernel_time(diff, XT3) > kernel_time(diff, XT4)

    def test_diffflux_is_costliest_memory_kernel(self):
        """§4.1: the diffusive-flux nest is the most costly loop nest."""
        inv = s3d_kernel_inventory()
        mem = [k for k in inv if k.category == "memory"]
        times = {k.name: kernel_time(k, XT3) for k in mem}
        assert max(times, key=times.get) == "COMPUTESPECIESDIFFFLUX"

    def test_fifteen_percent_of_peak(self):
        """§4.1: S3D achieves 0.305 flops/cycle = 15 % of peak."""
        inv = s3d_kernel_inventory()
        frac = achieved_flops_fraction(inv, XT3)
        assert frac == pytest.approx(0.15, abs=0.01)


class TestWeakScaling:
    def test_flat_weak_scaling(self):
        """Fig 1: cost per point per step is flat from 2 to 8192 cores."""
        cores = [2, 64, 1024, 8192]
        t = weak_scaling_curve(XT4, cores)
        spread = (max(t) - min(t)) / min(t)
        assert spread < 0.05

    def test_hybrid_pinned_to_xt3_beyond_partition(self):
        """Fig 1's green curve: >8192 cores runs at the XT3 rate."""
        inv = s3d_kernel_inventory()
        t = hybrid_weak_scaling([4096, 12000, 22800])
        assert t[0] * 1e6 == pytest.approx(total_time(inv, XT4) * 1e6, rel=0.05)
        for big in t[1:]:
            assert big * 1e6 == pytest.approx(total_time(inv, XT3) * 1e6, rel=0.05)

    def test_monotone_ordering(self):
        cores = [64, 8192]
        t3 = weak_scaling_curve(XT3, cores)
        t4 = weak_scaling_curve(XT4, cores)
        assert all(a > b for a, b in zip(t3, t4))


class TestLoadBalance:
    def test_endpoints(self):
        """Fig 3: 68 us at f=0 down to ~55 us at f=1."""
        inv = s3d_kernel_inventory()
        assert rebalanced_cost(0.0) * 1e6 == pytest.approx(
            total_time(inv, XT3) * 1e6, rel=1e-6
        )
        assert rebalanced_cost(1.0) * 1e6 == pytest.approx(
            total_time(inv, XT4) * 1e6, rel=0.02
        )

    def test_jaguar_prediction(self):
        """§4: 'a predicted performance of 61 us ... at 46 % XT4'."""
        assert predicted_jaguar_cost() * 1e6 == pytest.approx(61.0, rel=0.03)

    def test_monotone_decreasing(self):
        f, cost = balance_curve()
        assert np.all(np.diff(cost[1:]) < 0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            rebalanced_cost(1.5)


class TestProfiler:
    def test_two_classes(self):
        profs = profile_hybrid_run(12800, sample_ranks=8)
        classes = {p.node_type for p in profs}
        assert classes == {"XT3", "XT4"}

    def test_xt4_waits_xt3_computes(self):
        """Fig 2: XT4 ranks spend substantially longer in MPI_Wait."""
        profs = profile_hybrid_run(12800, sample_ranks=8)
        cm = class_means(profs)
        assert cm["XT4"]["MPI_WAIT"] > 5 * cm["XT3"]["MPI_WAIT"]

    def test_totals_balanced(self):
        """Bulk-synchronous execution: both classes' totals match."""
        profs = profile_hybrid_run(12800, sample_ranks=8)
        cm = class_means(profs)
        t3 = sum(cm["XT3"].values())
        t4 = sum(cm["XT4"].values())
        assert t4 == pytest.approx(t3, rel=0.05)

    def test_reaction_rates_class_independent(self):
        profs = profile_hybrid_run(12800, sample_ranks=8)
        cm = class_means(profs)
        assert cm["XT3"]["REACTION_RATES"] == pytest.approx(
            cm["XT4"]["REACTION_RATES"], rel=0.05
        )

    def test_pure_allocation_rejected(self):
        with pytest.raises(ValueError):
            profile_hybrid_run(64)

    def test_sim_profiler_instruments(self):
        prof = SimProfiler()
        fn = prof.instrument("square", lambda x: x * x)
        assert fn(3) == 9
        assert prof.exclusive_times()["square"] >= 0
        assert "square" in prof.report()
