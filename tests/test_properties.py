"""Property-based tests (hypothesis) on core data structures and
invariants: EOS round-trips, mixture rules, layout bijectivity, cache
semantics, decomposition coverage, filter/derivative identities,
conditional statistics, brushing monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.chemistry.mechanisms import air, h2_li2004
from repro.core.derivatives import DerivativeOperator, fornberg_weights
from repro.core.filters import FilterOperator
from repro.io.layout import BlockLayout
from repro.loopopt.cache import CacheSim
from repro.parallel.decomp import CartesianDecomposition, block_range
from repro.analysis.conditional import conditional_mean
from repro.viz.parallel_coords import ParallelCoordinates

MECH = h2_li2004()
AIR = air()

composition = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=9, max_size=9
).map(lambda v: np.array(v) / np.sum(v))

temperature = st.floats(min_value=250.0, max_value=2800.0)
pressure = st.floats(min_value=1e4, max_value=5e6)


class TestChemistryProperties:
    @given(Y=composition, T=temperature, p=pressure)
    @settings(max_examples=50, deadline=None)
    def test_eos_roundtrip(self, Y, T, p):
        rho = MECH.density(p, T, Y)
        assert MECH.pressure(rho, T, Y) == pytest.approx(p, rel=1e-12)

    @given(Y=composition)
    @settings(max_examples=50, deadline=None)
    def test_mass_mole_roundtrip(self, Y):
        X = MECH.mass_to_mole(Y)
        np.testing.assert_allclose(MECH.mole_to_mass(X), Y, rtol=1e-10)
        assert X.sum() == pytest.approx(1.0, rel=1e-10)

    @given(Y=composition, T=temperature)
    @settings(max_examples=50, deadline=None)
    def test_cp_exceeds_cv(self, Y, T):
        cp = MECH.cp_mass(np.asarray(T), Y)
        cv = MECH.cv_mass(np.asarray(T), Y)
        assert float(cp) > float(cv) > 0

    @given(Y=composition, T=temperature)
    @settings(max_examples=30, deadline=None)
    def test_temperature_energy_roundtrip(self, Y, T):
        e = MECH.int_energy_mass(np.array([T]), Y[:, None])
        T2 = MECH.temperature_from_energy(e, Y[:, None])
        assert T2[0] == pytest.approx(T, rel=1e-7)

    @given(Y=composition, T=st.floats(min_value=700.0, max_value=2500.0),
           rho=st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_production_rates_conserve_mass(self, Y, T, rho):
        w = MECH.production_rates(rho, np.array([T]), Y[:, None])
        scale = max(np.abs(w).max(), 1e-30)
        assert abs(w.sum()) <= 1e-10 * max(scale, 1.0)


class TestNumericsProperties:
    @given(
        n=st.integers(min_value=12, max_value=64),
        c=st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_derivative_kills_constants(self, n, c):
        op = DerivativeOperator(n, 0.1, periodic=False)
        assert np.abs(op(np.full(n, c))).max() < 1e-11 * max(abs(c), 1.0)

    @given(
        n=st.integers(min_value=12, max_value=64),
        a=st.floats(min_value=-3.0, max_value=3.0),
        b=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_derivative_exact_on_linear(self, n, a, b):
        x = np.linspace(0.0, 1.0, n)
        op = DerivativeOperator(n, x[1] - x[0], periodic=False)
        d = op(a * x + b)
        np.testing.assert_allclose(d, a, atol=1e-9 * (abs(a) + abs(b) + 1))

    @given(
        n=st.integers(min_value=11, max_value=48),
        c=st.floats(min_value=-4.0, max_value=4.0),
        alpha=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_filter_preserves_constants(self, n, c, alpha):
        for periodic in (True, False):
            filt = FilterOperator(n, periodic=periodic, alpha=alpha)
            np.testing.assert_allclose(filt(np.full(n, c)), c,
                                       atol=1e-12 * (abs(c) + 1))

    @given(hnp.arrays(np.float64, st.integers(min_value=16, max_value=48),
                      elements=st.floats(min_value=-10, max_value=10)))
    @settings(max_examples=30, deadline=None)
    def test_filter_contracts_every_fourier_mode(self, f):
        """The periodic filter damps every Fourier mode: |g_hat(k)| <=
        |f_hat(k)| for all k (its transfer function lies in [0, 1]).

        (It is NOT a max-norm contraction — the operator's inf-norm is
        2 — so the spectral statement is the right invariant.)
        """
        filt = FilterOperator(len(f), periodic=True, alpha=1.0)
        g = filt(f)
        fh = np.abs(np.fft.rfft(f))
        gh = np.abs(np.fft.rfft(g))
        assert np.all(gh <= fh + 1e-9 * (1.0 + fh))

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_fornberg_partition_of_unity(self, npts, which):
        """Interpolation weights sum to 1; derivative weights sum to 0."""
        z = min(which, npts - 1) + 0.3
        w = fornberg_weights(z, np.arange(npts, dtype=float), 1)
        assert w[0].sum() == pytest.approx(1.0, abs=1e-9)
        assert w[1].sum() == pytest.approx(0.0, abs=1e-9)


class TestFormalOrderProperties:
    """Grid-refinement properties of the 8th-order stencil and the
    10th-order filter on randomized smooth fields (§2: 'eighth order
    explicit finite difference' + 'tenth order filter')."""

    @staticmethod
    def _smooth_field(n, seed, n_modes=3):
        """Random low-wavenumber trig polynomial and its derivative."""
        rng = np.random.default_rng(seed)
        x = np.arange(n) / n  # periodic unit interval, spacing 1/n
        f = np.zeros(n)
        df = np.zeros(n)
        for k in range(1, n_modes + 1):
            a, b = rng.uniform(-1, 1, 2)
            w = 2 * np.pi * k
            f += a * np.sin(w * x) + b * np.cos(w * x)
            df += w * (a * np.cos(w * x) - b * np.sin(w * x))
        return f, df

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.sampled_from([16, 20, 24, 32]))
    @settings(max_examples=25, deadline=None)
    def test_derivative_achieves_eighth_order(self, seed, n):
        """Halving the spacing cuts the error by ~2^8 (formal order >= 7
        measured, leaving headroom for the roundoff floor)."""
        from hypothesis import assume

        errs = []
        for m in (n, 2 * n):
            f, df = self._smooth_field(m, seed)
            op = DerivativeOperator(m, 1.0 / m, periodic=True)
            errs.append(np.abs(op(f) - df).max())
        # skip draws where the fine-grid error hits the roundoff floor
        assume(errs[1] > 1e-13)
        order = np.log2(errs[0] / errs[1])
        assert order > 7.0

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.sampled_from([16, 24, 32, 48]),
           alpha=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_filter_transfer_function(self, seed, n, alpha):
        """The periodic filter's transfer function is
        1 - alpha*sin^10(pi k / n): low-wavenumber content passes nearly
        unchanged while the Nyquist mode is damped by exactly alpha."""
        rng = np.random.default_rng(seed)
        f = rng.uniform(-1, 1, n)
        filt = FilterOperator(n, periodic=True, alpha=alpha)
        fh = np.fft.rfft(f)
        gh = np.fft.rfft(filt(f))
        k = np.arange(fh.size)
        transfer = 1.0 - alpha * np.sin(np.pi * k / n) ** 10
        np.testing.assert_allclose(gh, transfer * fh, atol=1e-12 * n)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.sampled_from([16, 24, 32]))
    @settings(max_examples=25, deadline=None)
    def test_filter_annihilates_nyquist_at_full_strength(self, seed, n):
        rng = np.random.default_rng(seed)
        smooth, _ = self._smooth_field(n, seed)
        nyquist = rng.uniform(0.5, 2.0) * (-1.0) ** np.arange(n)
        filt = FilterOperator(n, periodic=True, alpha=1.0)
        g = filt(smooth + nyquist)
        # the odd-even mode is gone ...
        gh = np.fft.rfft(g)
        assert abs(gh[n // 2]) < 1e-11 * n
        # ... while low-wavenumber content passes within the transfer
        # bound: each |k| <= 3 mode is damped by at most sin(3 pi/n)^10
        bound = 6.0 * np.sin(3 * np.pi / n) ** 10 + 1e-12
        assert np.abs(g - smooth).max() <= bound


class TestDecompositionProperties:
    @given(
        n=st.integers(min_value=1, max_value=200),
        parts=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_block_range_partition(self, n, parts):
        parts = min(parts, n)
        ranges = [block_range(n, parts, i) for i in range(parts)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1

    @given(
        nx=st.integers(min_value=4, max_value=20),
        ny=st.integers(min_value=4, max_value=20),
        px=st.integers(min_value=1, max_value=4),
        py=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_scatter_gather_identity(self, nx, ny, px, py):
        px, py = min(px, nx), min(py, ny)
        d = CartesianDecomposition((nx, ny), (px, py))
        a = np.random.default_rng(0).random((nx, ny))
        np.testing.assert_array_equal(d.gather(d.scatter(a)), a)


class TestLayoutProperties:
    @given(
        nx=st.integers(min_value=2, max_value=8),
        ny=st.integers(min_value=2, max_value=8),
        nz=st.integers(min_value=2, max_value=6),
        px=st.integers(min_value=1, max_value=2),
        py=st.integers(min_value=1, max_value=2),
        m=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_runs_are_a_bijection(self, nx, ny, nz, px, py, m):
        layout = BlockLayout((nx * px, ny * py, nz), (px, py, 1), fourth_dim=m)
        seen = np.zeros(layout.total_bytes // 8, dtype=int)
        for rank in range(layout.n_ranks):
            for off, x0, y, z, mm, lx in layout.local_runs(rank):
                seen[off // 8 : off // 8 + lx] += 1
        assert np.all(seen == 1)


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                    max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_counts_consistent(self, addrs):
        sim = CacheSim(size_bytes=1 << 12, line_bytes=64, associativity=4)
        for a in addrs:
            sim.access(a)
        s = sim.stats
        assert s.hits + s.misses == s.accesses == len(addrs)
        assert 0.0 <= s.miss_rate <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1023), min_size=2,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_hits(self, addrs):
        sim = CacheSim(size_bytes=1 << 12, line_bytes=64, associativity=4)
        for a in addrs:
            sim.access(a)
            assert sim.access(a) is True  # just-touched line must hit


class TestStatisticsProperties:
    @given(hnp.arrays(np.float64, st.integers(min_value=10, max_value=300),
                      elements=st.floats(min_value=-100, max_value=100)))
    @settings(max_examples=30, deadline=None)
    def test_conditional_mean_counts(self, x):
        centers, mean, std, count = conditional_mean(x, x, bins=8)
        assert count.sum() == x.size
        # where defined, conditioning a variable on itself stays in-bin
        width = centers[1] - centers[0]
        ok = ~np.isnan(mean)
        assert np.all(np.abs(mean[ok] - centers[ok]) <= width)

    @given(
        lo=st.floats(min_value=0.0, max_value=0.5),
        width=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_brushing_monotone(self, lo, width):
        """Narrowing a brush never grows the selection."""
        rng = np.random.default_rng(1)
        pc = ParallelCoordinates({"a": rng.random((10, 10))})
        pc.brush("a", lo, lo + width)
        narrow = pc.selection().sum()
        pc.brush("a", lo, lo + width / 2)
        narrower = pc.selection().sum()
        assert narrower <= narrow
