"""Tests for the fault-injection and recovery subsystem.

The injector seed is taken from ``REPRO_FAULT_SEED`` (the CI
fault-injection lane runs this file across several fixed seeds), so
every recovery path must hold for *any* seed: specs are bounded with
``count`` so retry budgets cover the worst case deterministically.
"""

import numpy as np
import pytest

from repro.core import Grid, S3DSolver, SolverConfig, ic
from repro.core.config import periodic_boundaries
from repro.io import SimFileSystem, lustre
from repro.io.restart import (
    load_solver_state,
    save_solver_state,
    verify_solver_state,
)
from repro.parallel.comm import SimMPI
from repro.resilience import (
    CheckpointRing,
    FaultInjector,
    MessageNotFoundError,
    NULL_INJECTOR,
    RankFailedError,
    ResilienceExhaustedError,
    RestartCorruptionError,
    RetryPolicy,
    TornWriteError,
    TransientIOError,
    run_resilient,
    seed_from_env,
)
from repro.telemetry import Telemetry
from repro.util.constants import P_ATM

SEED = seed_from_env(0)


def _pulse_solver(mech, Y, n=32, **cfg_kwargs):
    grid = Grid((n,), (1.0,), periodic=(True,))
    state = ic.pressure_pulse(mech, grid, p0=P_ATM, T0=300.0, Y=Y,
                              amplitude=1e-3, width=0.05)
    cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=5e-8,
                       filter_interval=2, filter_alpha=0.2, **cfg_kwargs)
    return S3DSolver(state, cfg, transport=None, reacting=False)


class TestFaultInjector:
    def test_off_by_default(self):
        fs = SimFileSystem(lustre())
        assert fs.faults is NULL_INJECTOR
        assert not fs.faults.enabled

    def test_null_injector_rejects_arming(self):
        with pytest.raises(RuntimeError, match="null injector"):
            NULL_INJECTOR.add("fs.write")

    def test_count_and_after_window(self):
        inj = FaultInjector(seed=SEED)
        inj.add("fs.write", count=2, after=1)
        fired = [inj.decide("fs.write") is not None for _ in range(6)]
        assert fired == [False, True, True, False, False, False]
        assert inj.fired == 2

    def test_deterministic_given_seed(self):
        def schedule(seed):
            inj = FaultInjector(seed=seed)
            inj.add("fs.write", probability=0.5, count=None)
            return [inj.decide("fs.write") is not None for _ in range(64)]

        assert schedule(SEED) == schedule(SEED)
        # a different seed produces a different schedule (overwhelmingly)
        assert schedule(SEED) != schedule(SEED + 1)

    def test_wildcard_site(self):
        inj = FaultInjector(seed=SEED)
        inj.add("fs.*", count=2)
        assert inj.decide("fs.open") is not None
        assert inj.decide("fs.write") is not None
        assert inj.decide("fs.read") is None

    def test_reset_replays_identically(self):
        inj = FaultInjector(seed=SEED)
        inj.add("x", probability=0.5, count=None)
        first = [inj.decide("x") is not None for _ in range(32)]
        inj.reset()
        assert [inj.decide("x") is not None for _ in range(32)] == first

    def test_telemetry_counter(self):
        tel = Telemetry()
        inj = FaultInjector(seed=SEED, telemetry=tel)
        inj.add("x", count=3, probability=1.0)
        for _ in range(5):
            inj.decide("x")
        assert tel.metrics.counter("resilience.faults_injected").value == 3


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        tel = Telemetry()
        policy = RetryPolicy(max_attempts=4)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("boom")
            return "ok"

        assert policy.call(flaky, telemetry=tel) == "ok"
        assert calls["n"] == 3
        assert tel.metrics.counter("resilience.retries").value == 2

    def test_exhausted_budget_reraises(self):
        policy = RetryPolicy(max_attempts=2)

        def always():
            raise TransientIOError("persistent")

        with pytest.raises(TransientIOError, match="persistent"):
            policy.call(always)

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(fatal)
        assert calls["n"] == 1

    def test_backoff_grows_and_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay=1e-3, backoff=2.0, max_delay=1.0,
                             jitter=0.25)
        d1, d2, d3 = (policy.delay(k, "lbl") for k in (1, 2, 3))
        assert d1 < d2 < d3
        assert policy.delay(2, "lbl") == d2  # same attempt, same jitter

    def test_backoff_charges_simulated_clock(self):
        fs = SimFileSystem(lustre())
        from repro.resilience import fs_backoff_sleep

        before = fs.time.overhead
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise TransientIOError("x")

        RetryPolicy().call(flaky, sleep=fs_backoff_sleep(fs))
        assert fs.time.overhead > before


class TestFilesystemFaults:
    def test_transient_open_error(self):
        inj = FaultInjector(seed=SEED)
        inj.add("fs.open", count=1)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        with pytest.raises(TransientIOError, match="injected open"):
            fs.open("f")
        fs.open("f")  # next attempt succeeds
        assert fs.exists("f")

    def test_torn_write_lands_partially_then_retry_converges(self):
        from repro.io.filesystem import WriteRequest

        inj = FaultInjector(seed=SEED)
        inj.add("fs.write", mode="torn", count=1)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        fs.open("f")
        reqs = [WriteRequest(0, "f", 0, b"A" * 64),
                WriteRequest(1, "f", 64, b"B" * 64)]
        with pytest.raises(TornWriteError):
            fs.phase_write(reqs)
        assert fs.file_bytes("f") != b"A" * 64 + b"B" * 64  # torn
        fs.phase_write(reqs)  # reissue overwrites the torn region
        assert fs.file_bytes("f") == b"A" * 64 + b"B" * 64

    def test_stale_read_returns_corrupt_bytes_once(self):
        from repro.io.filesystem import WriteRequest

        inj = FaultInjector(seed=SEED)
        inj.add("fs.read", mode="stale", count=1)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        fs.open("f")
        fs.phase_write([WriteRequest(0, "f", 0, b"payload-bytes" * 4)])
        bad = fs.read("f", 0, 52)
        good = fs.read("f", 0, 52)
        assert bad != good
        assert good == b"payload-bytes" * 4

    def test_rename_is_atomic_commit(self):
        from repro.io.filesystem import WriteRequest

        fs = SimFileSystem(lustre())
        fs.open("a.tmp")
        fs.phase_write([WriteRequest(0, "a.tmp", 0, b"xyz")])
        fs.rename("a.tmp", "a")
        assert not fs.exists("a.tmp")
        assert fs.file_bytes("a") == b"xyz"
        with pytest.raises(FileNotFoundError):
            fs.rename("missing", "b")

    def test_unlink_and_listdir(self):
        fs = SimFileSystem(lustre())
        for p in ("r.1", "r.2", "q.1"):
            fs.open(p)
        assert fs.listdir("r.") == ["r.1", "r.2"]
        fs.unlink("r.1")
        assert fs.listdir("r.") == ["r.2"]
        with pytest.raises(FileNotFoundError):
            fs.unlink("r.1")

    def test_s3dio_checkpoint_retries_transient_faults(self):
        from repro.io import S3DCheckpoint

        inj = FaultInjector(seed=SEED)
        inj.add("fs.open", count=1)
        inj.add("fs.write", count=2)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        ck = S3DCheckpoint(proc_shape=(2, 1, 1), block=(4, 4, 4),
                           retry=RetryPolicy(max_attempts=5))
        arrays = ck.synthetic_arrays(seed=0)
        ck.write_checkpoint(fs, "independent", arrays, 0)
        assert inj.fired == 3
        # retried writes still land the canonical bytes
        assert ck.verify(fs, "independent", arrays, 0)


class TestSimMPIFaults:
    def test_recv_error_names_pending_queue_state(self):
        world = SimMPI(4)
        world.comm(1).Send(np.arange(3.0), dest=0, tag=7)
        with pytest.raises(MessageNotFoundError) as err:
            world.comm(0).Recv(source=2, tag=9)
        msg = str(err.value)
        assert "no pending message from rank 2 with tag 9" in msg
        assert "from rank 1 tag 7: 1 queued" in msg

    def test_recv_error_on_empty_mailbox(self):
        world = SimMPI(2)
        with pytest.raises(MessageNotFoundError, match="mailbox empty"):
            world.comm(0).Recv(source=1)

    def test_dropped_message(self):
        inj = FaultInjector(seed=SEED)
        inj.add("mpi.send", mode="drop", count=1)
        world = SimMPI(2, fault_injector=inj)
        world.comm(0).Send(np.ones(4), dest=1)
        assert world.dropped == 1
        assert not world.comm(1).probe(source=0)
        world.comm(0).Send(np.ones(4), dest=1)  # next one flows
        np.testing.assert_array_equal(world.comm(1).Recv(source=0), np.ones(4))

    def test_corrupted_message(self):
        inj = FaultInjector(seed=SEED)
        inj.add("mpi.send", mode="corrupt", count=1)
        world = SimMPI(2, fault_injector=inj)
        payload = np.arange(16.0)
        world.comm(0).Send(payload, dest=1)
        received = world.comm(1).Recv(source=0)
        assert received.shape == payload.shape
        assert not np.array_equal(received, payload)

    def test_delayed_message(self):
        inj = FaultInjector(seed=SEED)
        inj.add("mpi.send", mode="delay", count=1)
        world = SimMPI(2, fault_injector=inj)
        world.comm(0).Send(np.ones(2), dest=1, tag=3)
        assert not world.comm(1).probe(source=0, tag=3)
        with pytest.raises(MessageNotFoundError, match="delayed message"):
            world.comm(1).Recv(source=0, tag=3)
        assert world.deliver_delayed() == 1
        np.testing.assert_array_equal(world.comm(1).Recv(source=0, tag=3),
                                      np.ones(2))

    def test_rank_failure(self):
        inj = FaultInjector(seed=SEED)
        inj.add("mpi.send", mode="rank_failure", count=1, rank=1)
        world = SimMPI(4, fault_injector=inj)
        with pytest.raises(RankFailedError, match="rank 1 failed"):
            world.comm(1).Send(np.ones(2), dest=2)
        assert world.failed_ranks == {1}
        # the dead rank poisons later traffic touching it
        with pytest.raises(RankFailedError):
            world.comm(0).Send(np.ones(2), dest=1)
        with pytest.raises(RankFailedError):
            world.comm(3).Recv(source=1)
        # unrelated ranks keep communicating
        world.comm(0).Send(np.ones(2), dest=2)
        np.testing.assert_array_equal(world.comm(2).Recv(source=0), np.ones(2))


class TestRestartValidation:
    def test_truncated_file_is_descriptive(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        save_solver_state(fs, solver, "ckpt")
        # truncate: keep header, drop most of the payload
        fs._files["ckpt"] = fs._files["ckpt"][: 200]
        with pytest.raises(RestartCorruptionError, match="truncated"):
            load_solver_state(fs, solver, "ckpt")

    def test_corrupt_payload_fails_checksum(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        save_solver_state(fs, solver, "ckpt")
        fs.corrupt("ckpt", offset=fs.file_size("ckpt") - 64)
        with pytest.raises(RestartCorruptionError, match="checksum mismatch"):
            load_solver_state(fs, solver, "ckpt")

    def test_corrupt_header_does_not_touch_solver(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        save_solver_state(fs, solver, "ckpt")
        u_before = solver.state.u.copy()
        t_before, n_before = solver.time, solver.step_count
        fs.corrupt("ckpt", offset=0)  # smash the magic
        with pytest.raises(RestartCorruptionError,
                           match="not a conserved-state"):
            load_solver_state(fs, solver, "ckpt")
        np.testing.assert_array_equal(solver.state.u, u_before)
        assert (solver.time, solver.step_count) == (t_before, n_before)

    def test_missing_file(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        with pytest.raises(FileNotFoundError):
            load_solver_state(fs, solver, "nope")

    def test_verify_reports_metadata(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        for _ in range(3):
            solver.step()
        fs = SimFileSystem(lustre())
        save_solver_state(fs, solver, "ckpt")
        info = verify_solver_state(fs, "ckpt")
        assert info["step"] == 3
        assert info["shape"] == solver.state.u.shape[1:]
        assert info["nbytes"] == solver.state.u.nbytes


class TestCheckpointRing:
    def test_ring_keeps_last_k(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        ring = CheckpointRing(fs, prefix="ring", keep=2)
        for _ in range(3):
            solver.step()
            ring.save(solver)
        steps = [s for s, _ in ring.entries()]
        assert steps == [2, 3]
        assert fs.listdir("ring.") == [ring.path_for(2), ring.path_for(3)]
        assert not fs.exists(ring.path_for(1))

    def test_atomic_save_never_leaves_tmp(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        ring = CheckpointRing(fs, prefix="ring")
        ring.save(solver)
        assert not fs.exists(ring.tmp_path)

    def test_save_survives_torn_write(self, air_mech, air_y):
        tel = Telemetry()
        inj = FaultInjector(seed=SEED, telemetry=tel)
        inj.add("fs.write", mode="torn", count=2)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        solver = _pulse_solver(air_mech, air_y)
        ring = CheckpointRing(fs, prefix="ring", telemetry=tel)
        path = ring.save(solver)
        verify_solver_state(fs, path)  # landed intact despite the tear
        assert tel.metrics.counter("resilience.retries").value > 0

    def test_corrupt_newest_falls_back_to_previous(self, air_mech, air_y):
        """Acceptance: corrupted newest ring entry -> restore_state uses
        the previous verified checkpoint and reports which one."""
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        ring = CheckpointRing(fs, prefix="ring", keep=3)
        for _ in range(2):
            solver.step()
            ring.save(solver)
        newest = ring.path_for(2)
        fs.corrupt(newest, offset=fs.file_size(newest) - 32)
        report = ring.restore_state(solver)
        assert report["step"] == 1
        assert report["path"] == ring.path_for(1)
        assert report["fallbacks"] == 1
        assert report["skipped"][0][0] == newest
        assert solver.step_count == 1

    def test_all_corrupt_raises_exhausted(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        ring = CheckpointRing(fs, prefix="ring", keep=2)
        for _ in range(2):
            solver.step()
            ring.save(solver)
        for _, path in ring.entries():
            fs.corrupt(path, offset=fs.file_size(path) - 16)
        with pytest.raises(ResilienceExhaustedError, match="candidates failed"):
            ring.restore_state(solver)

    def test_drop_corrupt_scrubs_ring(self, air_mech, air_y):
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        ring = CheckpointRing(fs, prefix="ring", keep=3)
        for _ in range(3):
            solver.step()
            ring.save(solver)
        fs.corrupt(ring.path_for(2), offset=64)
        assert ring.drop_corrupt() == 1
        assert [s for s, _ in ring.entries()] == [1, 3]


class TestResilientRun:
    def _reference(self, mech, Y, n_steps):
        ref = _pulse_solver(mech, Y)
        for _ in range(n_steps):
            ref.step()
        return ref

    def test_clean_run_matches_plain_run(self, air_mech, air_y):
        ref = self._reference(air_mech, air_y, 8)
        solver = _pulse_solver(air_mech, air_y)
        fs = SimFileSystem(lustre())
        report = run_resilient(solver, fs, 8, checkpoint_interval=3)
        assert report.clean
        assert report.steps_completed == 8
        assert np.array_equal(solver.state.u, ref.state.u)

    def test_end_to_end_recovery_bit_identical(self, air_mech, air_y):
        """Acceptance: injected FS write faults + one mid-run fault over
        a corrupted newest checkpoint -> the run completes via
        rollback-and-replay, bit-identical to an uninjected run, with
        faults/retries/recoveries counters all > 0."""
        n_steps = 12
        ref = self._reference(air_mech, air_y, n_steps)

        tel = Telemetry()
        inj = FaultInjector(seed=SEED, telemetry=tel)
        # transient write faults: count=2 < max_attempts so the retry
        # budget always covers them, whatever the seed interleaving
        inj.add("fs.write", mode="error", probability=0.5, count=2)
        # one computational fault partway through the run
        inj.add("solver.step", count=1, after=7)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        solver = _pulse_solver(air_mech, air_y)

        ring = CheckpointRing(fs, prefix="res", keep=3, telemetry=tel)
        # corrupt the newest checkpoint as soon as two exist, so the
        # mid-run recovery must fall back to the older one
        corrupted = {"done": False}
        original_save = ring.save

        def save_and_maybe_corrupt(s):
            path = original_save(s)
            if not corrupted["done"] and len(ring.entries()) >= 2:
                fs.corrupt(path, offset=fs.file_size(path) - 24)
                corrupted["done"] = True
            return path

        ring.save = save_and_maybe_corrupt
        report = run_resilient(solver, fs, n_steps, checkpoint_interval=4,
                               ring=ring, injector=inj, telemetry=tel)

        assert report.steps_completed == n_steps
        assert report.recoveries >= 1
        assert report.checkpoint_fallbacks >= 1
        assert np.array_equal(solver.state.u, ref.state.u)  # bitwise
        assert solver.time == ref.time
        counters = tel.metrics.counters
        assert counters["resilience.faults_injected"].value > 0
        assert counters["resilience.retries"].value > 0
        assert counters["resilience.recoveries"].value > 0

    def test_solver_run_resilient_wrapper(self, air_mech, air_y):
        ref = self._reference(air_mech, air_y, 6)
        inj = FaultInjector(seed=SEED)
        inj.add("solver.step", count=1, after=4)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        solver = _pulse_solver(air_mech, air_y)
        report = solver.run_resilient(fs, 6, checkpoint_interval=2)
        assert report.recoveries == 1
        assert np.array_equal(solver.state.u, ref.state.u)

    def test_recovery_budget_exhausts(self, air_mech, air_y):
        inj = FaultInjector(seed=SEED)
        inj.add("solver.step", count=None)  # every step faults, forever
        fs = SimFileSystem(lustre(), fault_injector=inj)
        solver = _pulse_solver(air_mech, air_y)
        with pytest.raises(ResilienceExhaustedError, match="budget"):
            run_resilient(solver, fs, 4, checkpoint_interval=2,
                          max_recoveries=3, injector=inj)

    def test_recovery_spans_and_history(self, air_mech, air_y):
        tel = Telemetry()
        inj = FaultInjector(seed=SEED, telemetry=tel)
        inj.add("solver.step", count=1, after=3)
        fs = SimFileSystem(lustre(), fault_injector=inj)
        solver = _pulse_solver(air_mech, air_y)
        report = run_resilient(solver, fs, 5, checkpoint_interval=2,
                               injector=inj, telemetry=tel)
        assert len(report.history) == 1
        ev = report.history[0]
        assert ev.at_step == 3 and ev.restored_step == 2
        assert "FaultInjectedError" in ev.error
        assert tel.tracer.call_counts().get("RECOVERY") == 1
        assert tel.metrics.counter("resilience.replayed_steps").value == 1


class TestWorkflowFaultSchedule:
    def test_injector_drives_environment(self):
        from repro.workflow import Environment, RemoteError, RemoteTimeoutError

        tel = Telemetry()
        inj = FaultInjector(seed=SEED, telemetry=tel)
        inj.add("workflow.transfer", count=1)
        inj.add("workflow.command.convert", mode="timeout", count=1)
        env = Environment(fault_injector=inj)
        env.add_machine("a")
        env.add_machine("b")
        env["a"].write("f", b"x")
        env["a"].register("convert", lambda m, *a: None)
        with pytest.raises(RemoteError, match="injected failure"):
            env.transfer("a", "f", "b", "f")
        with pytest.raises(RemoteTimeoutError, match="injected timeout"):
            env.execute("a", "convert", "f")
        # exhausted specs: both operations now succeed
        env.transfer("a", "f", "b", "f")
        env.execute("a", "convert", "f")
        assert env.failures_injected == 2
        assert tel.metrics.counter("resilience.faults_injected").value == 2
