"""Tests for checkpoint read-back and solver restart (closing the §5/§9
loop: the restart files the workflow moves are actually restartable)."""

import numpy as np
import pytest

from repro.core import Grid, SolverConfig, S3DSolver, ic
from repro.core.config import periodic_boundaries
from repro.io import S3DCheckpoint, SimFileSystem, lustre
from repro.io.restart import (
    checkpoint_state,
    read_global_array,
    read_rank_block,
    restore_state,
)
from repro.transport import ConstantLewisTransport
from repro.util.constants import P_ATM


class TestReadBack:
    def test_global_array_roundtrip(self):
        ck = S3DCheckpoint(proc_shape=(2, 2, 1), block=(4, 4, 4))
        arrays = ck.synthetic_arrays(seed=3)
        fs = SimFileSystem(lustre())
        ck.write_checkpoint(fs, "collective", arrays, 0)
        for (name, m), layout, arr in zip(
            [("mass", 11), ("velocity", 3), ("pressure", 1), ("temperature", 1)],
            ck.layouts, arrays,
        ):
            back = read_global_array(fs, f"{name}.0000", layout)
            np.testing.assert_array_equal(back, arr)

    def test_rank_block_roundtrip(self):
        ck = S3DCheckpoint(proc_shape=(2, 1, 2), block=(4, 4, 4))
        arrays = ck.synthetic_arrays(seed=4)
        fs = SimFileSystem(lustre())
        ck.write_checkpoint(fs, "caching", arrays, 0)
        layout = ck.layouts[0]
        for rank in range(layout.n_ranks):
            back = read_rank_block(fs, "mass.0000", layout, rank)
            np.testing.assert_array_equal(back, layout.local_block(arrays[0], rank))


class TestSolverRestart:
    def test_state_roundtrip_through_checkpoint(self, h2_mech, h2_air_stoich):
        grid = Grid((16, 16), (1e-3, 1e-3), periodic=(True, True))
        xx, yy = grid.meshgrid()
        T = 800.0 + 400.0 * np.sin(2 * np.pi * xx / 1e-3)
        Yf = h2_air_stoich[:, None, None] * np.ones((1, 16, 16))
        rho = h2_mech.density(P_ATM, T, Yf)
        from repro.core import State

        state = State.from_primitive(h2_mech, grid, rho, [3.0, -1.0], T, Yf)
        cfg = SolverConfig(boundaries=periodic_boundaries(2), cfl=0.5)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)

        ck = S3DCheckpoint(proc_shape=(2, 2, 1), block=(8, 8, 1))
        fs = SimFileSystem(lustre())
        checkpoint_state(fs, ck, solver, 0)
        restored = restore_state(fs, ck, h2_mech, grid, 0)
        np.testing.assert_allclose(restored.u, state.u, rtol=1e-10, atol=1e-12)

    def test_restarted_run_continues_identically(self, air_mech, air_y):
        """Run 10 steps, checkpoint, run 10 more; vs restore + 10: equal."""
        grid = Grid((24, 16), (1e-2, 1e-2), periodic=(True, True))
        state = ic.pressure_pulse(air_mech, grid, p0=P_ATM, T0=300.0,
                                  Y=air_y, amplitude=1e-3)
        # embed 2D as (24, 16, 1)
        cfg = SolverConfig(boundaries=periodic_boundaries(2), dt=5e-8,
                           filter_interval=1, filter_alpha=0.2)
        tr = ConstantLewisTransport(air_mech)
        solver = S3DSolver(state, cfg, transport=tr, reacting=False)
        for _ in range(10):
            solver.step()
        ck = S3DCheckpoint(proc_shape=(2, 2, 1), block=(12, 8, 1))
        fs = SimFileSystem(lustre())
        checkpoint_state(fs, ck, solver, 7)
        # continue the original
        for _ in range(10):
            solver.step()
        ref = solver.state.u.copy()
        # restore and continue
        restored = restore_state(fs, ck, air_mech, grid, 7)
        solver2 = S3DSolver(restored, cfg, transport=tr, reacting=False)
        for _ in range(10):
            solver2.step()
        # momentum components pass through zero: scale atol per variable
        for var in range(ref.shape[0]):
            scale = np.abs(ref[var]).max()
            np.testing.assert_allclose(
                solver2.state.u[var], ref[var], rtol=1e-9,
                atol=1e-9 * max(scale, 1e-300),
            )

    def test_shape_mismatch_rejected(self, air_mech, air_y):
        grid = Grid((16, 16), (1e-2, 1e-2), periodic=(True, True))
        state = ic.uniform(air_mech, grid, p=P_ATM, T=300.0, Y=air_y)
        cfg = SolverConfig(boundaries=periodic_boundaries(2), cfl=0.5)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        ck = S3DCheckpoint(proc_shape=(1, 1, 1), block=(8, 8, 1))
        fs = SimFileSystem(lustre())
        with pytest.raises(ValueError, match="embed"):
            checkpoint_state(fs, ck, solver, 0)
