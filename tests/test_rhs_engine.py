"""Batched-sweep RHS engine: bit-exactness vs the naive reference,
workspace allocation behavior, property memoization, and engine
selection plumbing."""

import os
import tracemalloc

import numpy as np
import pytest

from repro.chemistry import ch4_twostep, h2_li2004
from repro.chemistry.mechanisms import air
from repro.core.config import BoundarySpec, SolverConfig
from repro.core.grid import Grid
from repro.core.rhs import ENGINES, CompressibleRHS
from repro.core.state import State
from repro.core.workspace import Workspace
from repro.telemetry import Telemetry
from repro.transport import (
    ConstantLewisTransport,
    MixtureAveragedTransport,
    PowerLawTransport,
)
from repro.util.constants import P_ATM


def _make_state(mech, grid, seed=3):
    rng = np.random.default_rng(seed)
    S = grid.shape
    T = 1100.0 + 300.0 * rng.random(S)
    rho = 0.4 + 0.2 * rng.random(S)
    vel = [30.0 * (rng.random(S) - 0.5) for _ in range(grid.ndim)]
    Y = rng.random((mech.n_species,) + S) + 0.05
    Y /= Y.sum(axis=0)
    return State.from_primitive(mech, grid, rho, vel, T, Y)


def _engine_pair(mech, grid, transport, reacting, boundaries=None):
    st_n = _make_state(mech, grid)
    st_b = State(mech, grid, st_n.u.copy())
    # same Newton warm start, else the two temperature solves converge
    # to last-bit-different roots before the engines even run
    if st_n._t_cache is not None:
        st_b._t_cache = st_n._t_cache.copy()
    rhs_n = CompressibleRHS(st_n, transport=transport, boundaries=boundaries,
                            reacting=reacting, engine="naive")
    rhs_b = CompressibleRHS(st_b, transport=transport, boundaries=boundaries,
                            reacting=reacting, engine="batched")
    return rhs_n, rhs_b, st_n, st_b


def _periodic(*shape_dx):
    shape, dx = zip(*shape_dx)
    return Grid(shape, dx, periodic=(True,) * len(shape))


G1 = _periodic((64, 0.01))
G2 = _periodic((16, 0.01), (12, 0.008))
G3 = _periodic((12, 0.01), (10, 0.01), (9, 0.01))


class TestEngineBitExactness:
    """The batched engine must reproduce the naive engine bit for bit."""

    @pytest.mark.parametrize("grid", [G1, G2, G3], ids=["1d", "2d", "3d"])
    def test_h2_mixture_reacting(self, grid):
        mech = h2_li2004()
        self._check(mech, grid, MixtureAveragedTransport(mech), True)

    @pytest.mark.parametrize("grid", [G1, G2, G3], ids=["1d", "2d", "3d"])
    def test_h2_euler(self, grid):
        self._check(h2_li2004(), grid, None, False)

    def test_h2_soret(self):
        mech = h2_li2004()
        self._check(mech, G2, MixtureAveragedTransport(mech, soret=True), True)

    def test_ch4_constant_lewis(self):
        mech = ch4_twostep()
        self._check(mech, G2, ConstantLewisTransport(mech, lewis={"CH4": 0.97}),
                    True)

    def test_ch4_mixture_3d(self):
        mech = ch4_twostep()
        self._check(mech, G3, MixtureAveragedTransport(mech), True)

    def test_air_power_law(self):
        self._check(air(), G2, PowerLawTransport(air()), False)

    def test_nscbc_1d(self):
        mech = h2_li2004()
        grid = Grid((48,), (0.01,), periodic=(False,))
        bcs = {(0, 0): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM),
               (0, 1): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM)}
        self._check(mech, grid, MixtureAveragedTransport(mech), True,
                    boundaries=bcs)

    def test_nscbc_2d_mixed_periodicity(self):
        mech = h2_li2004()
        grid = Grid((24, 10), (0.01, 0.008), periodic=(False, True))
        bcs = {(0, 0): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM),
               (0, 1): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM),
               (1, 0): BoundarySpec("periodic"),
               (1, 1): BoundarySpec("periodic")}
        self._check(mech, grid, MixtureAveragedTransport(mech), True,
                    boundaries=bcs)

    def _check(self, mech, grid, transport, reacting, boundaries=None):
        rhs_n, rhs_b, st_n, st_b = _engine_pair(
            mech, grid, transport, reacting, boundaries=boundaries
        )
        du_n = rhs_n(0.0, st_n.u)
        du_b = rhs_b(0.0, st_b.u)
        assert np.array_equal(du_n, du_b)
        assert np.array_equal(rhs_n.last_heat_release, rhs_b.last_heat_release)
        # the out= path and a warm (arena reuse) re-evaluation stay exact
        out = np.empty_like(du_b)
        res = rhs_b(0.0, st_b.u, out=out)
        assert res is out
        assert np.array_equal(out, du_n)

    def test_stable_dt_agrees(self):
        mech = h2_li2004()
        rhs_n, rhs_b, _, _ = _engine_pair(
            mech, G2, MixtureAveragedTransport(mech), True
        )
        dt_n = rhs_n.stable_dt()
        dt_b = rhs_b.stable_dt()
        # the naive path re-runs the Newton solve from a converged guess,
        # the batched path memoizes — agreement is to roundoff, not bits
        assert dt_b == pytest.approx(dt_n, rel=1e-10)


class TestWorkspaceBehavior:
    def test_zero_allocation_when_warm(self):
        """After warmup, an RHS evaluation allocates nothing large."""
        mech = h2_li2004()
        tel = Telemetry()
        st = _make_state(mech, G2)
        rhs = CompressibleRHS(st, transport=MixtureAveragedTransport(mech),
                              reacting=True, engine="batched", telemetry=tel)
        rhs(0.0, st.u)
        gauge = tel.gauge("rhs.bytes_allocated")
        assert gauge.value > 0  # cold evaluation built the arena
        st.u[st.i_rho] *= 1.0 + 1e-9
        st.mark_modified()
        rhs(0.0, st.u)
        assert gauge.value == 0.0  # warm evaluation: arena fully reused

    @pytest.mark.parametrize(
        "reacting,max_ratio",
        # viscous transport + fluxes are fully arena-backed; the reacting
        # path still allocates inside the kinetics evaluator (known
        # remaining work), so it only has to be well below naive
        [(False, 0.05), (True, 0.35)],
        ids=["viscous", "reacting"],
    )
    def test_warm_eval_tracemalloc_far_below_naive(self, reacting, max_ratio):
        mech = h2_li2004()
        tr = MixtureAveragedTransport(mech)
        # large enough that field-sized temporaries dominate the peak
        # (on tiny grids fixed-size bookkeeping drowns out the signal)
        grid = _periodic((48, 0.01), (40, 0.008))
        st_n = _make_state(mech, grid)
        st_b = State(mech, grid=grid, u=st_n.u.copy())
        rhs_n = CompressibleRHS(st_n, transport=tr, reacting=reacting,
                                engine="naive")
        rhs_b = CompressibleRHS(st_b, transport=tr, reacting=reacting,
                                engine="batched")
        out = np.empty_like(st_b.u)
        rhs_n(0.0, st_n.u)
        rhs_b(0.0, st_b.u, out=out)

        def peak(fn):
            tracemalloc.start()
            fn()
            _, p = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return p

        peak_b = peak(lambda: rhs_b(0.0, st_b.u, out=out))
        peak_n = peak(lambda: rhs_n(0.0, st_n.u))
        # the warm batched engine allocates no field-sized temporaries:
        # its transient peak must be a small fraction of the naive one
        assert peak_b < max_ratio * peak_n

    def test_workspace_reuses_and_rekeys(self):
        ws = Workspace()
        a = ws.array("x", (4, 5))
        assert ws.array("x", (4, 5)) is a
        b = ws.array("x", (6,))  # same name, new shape -> new buffer
        assert b.shape == (6,)
        assert ws.zeros("z", (3,)).sum() == 0.0
        assert len(ws) == 2
        assert ws.nbytes == b.nbytes + 24
        ws.clear()
        assert len(ws) == 0


class TestPropsMemo:
    def test_cache_hit_between_call_and_stable_dt(self):
        mech = h2_li2004()
        tel = Telemetry()
        st = _make_state(mech, G2)
        rhs = CompressibleRHS(st, transport=MixtureAveragedTransport(mech),
                              reacting=True, engine="batched", telemetry=tel)
        hits = tel.counter("rhs.props_cache_hits")
        rhs(0.0, st.u)
        assert hits.value == 0
        rhs.stable_dt()  # same state buffer, same version -> memo hit
        assert hits.value == 1

    def test_cache_invalidated_by_content_change(self):
        mech = h2_li2004()
        tel = Telemetry()
        st = _make_state(mech, G2)
        rhs = CompressibleRHS(st, transport=MixtureAveragedTransport(mech),
                              reacting=True, engine="batched", telemetry=tel)
        hits = tel.counter("rhs.props_cache_hits")
        du0 = rhs(0.0, st.u).copy()
        # in-place mutation without mark_modified: the content fingerprint
        # must still force a recompute (low-storage RK mutates in place)
        st.u[st.i_energy] *= 1.0 + 1e-6
        du1 = rhs(0.0, st.u)
        assert hits.value == 0
        assert not np.array_equal(du0, du1)


class TestEngineSelection:
    def test_default_is_batched(self):
        mech = h2_li2004()
        st = _make_state(mech, G1)
        rhs = CompressibleRHS(st, reacting=False)
        assert rhs.engine == "batched"
        assert rhs.supports_out

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_RHS_ENGINE", "naive")
        mech = h2_li2004()
        st = _make_state(mech, G1)
        rhs = CompressibleRHS(st, reacting=False)
        assert rhs.engine == "naive"
        assert not rhs.supports_out

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RHS_ENGINE", "naive")
        mech = h2_li2004()
        st = _make_state(mech, G1)
        rhs = CompressibleRHS(st, reacting=False, engine="batched")
        assert rhs.engine == "batched"

    def test_unknown_engine_rejected(self):
        mech = h2_li2004()
        st = _make_state(mech, G1)
        with pytest.raises(ValueError, match="engine"):
            CompressibleRHS(st, reacting=False, engine="vectorized")

    def test_config_engine_validation(self):
        grid = Grid((16,), (0.01,), periodic=(True,))
        bcs = {(0, 0): BoundarySpec("periodic"), (0, 1): BoundarySpec("periodic")}
        with pytest.raises(ValueError, match="rhs_engine"):
            SolverConfig(boundaries=bcs, rhs_engine="bogus").validate(grid)
        for eng in ENGINES:
            SolverConfig(boundaries=bcs, rhs_engine=eng).validate(grid)

    def test_out_aliasing_state_rejected(self):
        mech = h2_li2004()
        st = _make_state(mech, G1)
        rhs = CompressibleRHS(st, reacting=False, engine="batched")
        with pytest.raises(ValueError, match="alias"):
            rhs(0.0, st.u, out=st.u)


class TestPrimitivesWorkspace:
    def test_bitwise_vs_plain(self):
        mech = h2_li2004()
        st = _make_state(mech, G2)
        st2 = State(mech, grid=G2, u=st.u.copy())
        if st._t_cache is not None:  # same Newton warm start for both
            st2._t_cache = st._t_cache.copy()
        rho, vel, T, p, Y, e0 = st.primitives(st.u)
        ws = Workspace()
        rho2, vel2, T2, p2, Y2, e02, wbar = st2.primitives_ws(st2.u, ws)
        assert np.array_equal(rho, rho2)
        for a, b in zip(vel, vel2):
            assert np.array_equal(a, b)
        assert np.array_equal(T, T2)
        assert np.array_equal(p, p2)
        assert np.array_equal(Y, Y2)
        assert np.array_equal(e0, e02)
        assert np.array_equal(wbar, mech.mean_weight(Y))

    def test_warm_rerun_allocates_nothing(self):
        mech = h2_li2004()
        st = _make_state(mech, G2)
        ws = Workspace()
        st.primitives_ws(st.u, ws)
        n = len(ws)
        st.primitives_ws(st.u, ws)
        assert len(ws) == n
