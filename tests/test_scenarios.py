"""Tests for the scaled DNS scenario builders (construction + short
advancement; the full physics checks live in the benchmarks)."""

import numpy as np
import pytest

from repro.scenarios import (
    bunsen_mixture,
    fuel_and_coflow,
    lifted_jet,
    premixed_flame_box,
)
from repro.chemistry import ch4_twostep


class TestStreams:
    def test_fuel_composition(self):
        from repro.chemistry import h2_li2004

        mech = h2_li2004()
        y_fuel, y_air = fuel_and_coflow(mech)
        assert y_fuel.sum() == pytest.approx(1.0)
        assert y_air.sum() == pytest.approx(1.0)
        X = mech.mass_to_mole(y_fuel)
        assert X[mech.index("H2")] == pytest.approx(0.65, rel=1e-9)

    def test_bunsen_equivalence_ratio(self):
        mech = ch4_twostep()
        Y = bunsen_mixture(mech, phi=0.7)
        X = mech.mass_to_mole(Y)
        # phi = 2 X_CH4 / X_O2 for CH4 + 2 O2
        phi = 2 * X[mech.index("CH4")] / X[mech.index("O2")]
        assert phi == pytest.approx(0.7, rel=1e-2)


class TestLiftedJet:
    def test_initial_state_sane(self):
        solver, info = lifted_jet(nx=32, ny=24, lx=2e-3, ly=1.5e-3)
        rho, vel, T, p, Y, _ = solver.state.primitives()
        assert T.min() > 350.0 and T.max() < 1350.0
        assert vel[0].max() > 30.0  # jet core
        np.testing.assert_allclose(Y.sum(axis=0), 1.0, atol=1e-12)

    def test_short_advance_stable(self):
        solver, info = lifted_jet(nx=32, ny=24, lx=2e-3, ly=1.5e-3)
        for _ in range(10):
            solver.step()
        _, _, T, p, _, _ = solver.state.primitives()
        assert np.isfinite(T).all()
        assert T.max() < 2000.0  # no spurious early ignition

    def test_inflow_holds(self):
        """The jet core at the inflow stays pinned; the transverse filter
        may smooth the shear layers slightly (bounded erosion)."""
        solver, info = lifted_jet(nx=32, ny=24, lx=2e-3, ly=1.5e-3, fluct=0.0)
        u_in = solver.state.primitives()[1][0][0].copy()
        for _ in range(10):
            solver.step()
        u_now = solver.state.primitives()[1][0][0]
        core = np.argmax(u_in)
        assert u_now[core] == pytest.approx(u_in[core], rel=1e-2)
        assert np.abs(u_now - u_in).max() < 0.15 * u_in.max()


class TestPremixedBox:
    @pytest.fixture(scope="class")
    def box(self):
        mech = ch4_twostep()
        y_b = np.zeros(mech.n_species)
        y_b[mech.index("CO2")] = 0.10
        y_b[mech.index("H2O")] = 0.09
        y_b[mech.index("N2")] = 0.81
        return premixed_flame_box(
            u_rms_over_sl=3.0, sl=3.3, delta_l=4.3e-4, t_burned=2230.0,
            y_burned=y_b, n=32, seed=0,
        )

    def test_two_fronts_present(self, box):
        solver, info = box
        _, _, T, _, _, _ = solver.state.primitives()
        mid = T[:, T.shape[1] // 2]
        edge = T[:, 0]
        assert mid.mean() < 900.0     # fresh band is cold
        assert edge.mean() > 2000.0   # products outside

    def test_velocity_rms_matches(self, box):
        solver, info = box
        _, vel, _, _, _, _ = solver.state.primitives()
        rms = np.sqrt(np.mean([np.mean((v - v.mean()) ** 2) for v in vel]))
        assert rms == pytest.approx(3.0 * 3.3, rel=0.05)

    def test_short_advance_stable(self, box):
        solver, info = box
        for _ in range(5):
            solver.step()
        _, _, T, _, _, _ = solver.state.primitives()
        assert np.isfinite(T).all()
        assert 600.0 < T.max() < 3200.0
