"""Integration tests for the DNS solver: conservation, acoustics, NSCBC."""

import numpy as np
import pytest

from repro.core import BoundarySpec, Grid, S3DSolver, SolverConfig, State, ic
from repro.core.config import periodic_boundaries
from repro.transport import ConstantLewisTransport, PowerLawTransport
from repro.util.constants import P_ATM


@pytest.fixture(scope="module")
def pulse_run(air_mech_mod, air_y_mod):
    """A short 1D periodic acoustic-pulse run shared across tests."""
    mech, Y = air_mech_mod, air_y_mod
    grid = Grid((96,), (1.0,), periodic=(True,))
    state = ic.pressure_pulse(mech, grid, p0=P_ATM, T0=300.0, Y=Y,
                              amplitude=1e-3, width=0.05)
    cfg = SolverConfig(boundaries=periodic_boundaries(1), cfl=0.5,
                       filter_interval=1, filter_alpha=0.2)
    solver = S3DSolver(state, cfg, transport=None, reacting=False)
    m0, e0 = state.total_mass(), state.total_energy()
    a = float(mech.sound_speed(np.array(300.0), Y))
    target = 0.25 / a
    while solver.time < target:
        solver.step()
    return solver, state, m0, e0, a


@pytest.fixture(scope="module")
def air_mech_mod():
    from repro.chemistry.mechanisms import air

    return air()


@pytest.fixture(scope="module")
def air_y_mod(air_mech_mod):
    return air_mech_mod.mass_fractions_from({"O2": 0.233, "N2": 0.767})


class TestConservation:
    def test_mass_conserved(self, pulse_run):
        _, state, m0, _, _ = pulse_run
        assert abs(state.total_mass() - m0) / m0 < 1e-12

    def test_energy_conserved(self, pulse_run):
        _, state, _, e0, _ = pulse_run
        assert abs(state.total_energy() - e0) / abs(e0) < 1e-12

    def test_pulse_travels_at_sound_speed(self, pulse_run):
        solver, state, _, _, a = pulse_run
        _, _, _, p, _, _ = state.primitives()
        grid = state.grid
        # initial pulse at x=0.5 splits; the right-moving peak is at
        # 0.5 + a*t modulo L
        expected = (0.5 + a * solver.time) % 1.0
        x_peak = grid.coords[0][np.argmax(p)]
        assert min(abs(x_peak - expected),
                   abs(x_peak - (1.0 - expected))) < 0.05

    def test_species_conserved(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((64,), (1.0,), periodic=(True,))
        state = ic.pressure_pulse(mech, grid, p0=P_ATM, T0=300.0, Y=Y,
                                  amplitude=1e-3)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), cfl=0.5)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        vol = grid.cell_volumes()
        o2_0 = float((state.u[state.i_species(0)] * vol).sum())
        for _ in range(20):
            solver.step()
        o2_1 = float((state.u[state.i_species(0)] * vol).sum())
        assert abs(o2_1 - o2_0) / o2_0 < 1e-12


class TestFreestreamPreservation:
    def test_uniform_state_is_steady(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((32, 24), (1e-2, 1e-2), periodic=(True, True))
        state = ic.uniform(mech, grid, p=P_ATM, T=400.0, Y=Y, velocity=[30.0, -10.0])
        cfg = SolverConfig(boundaries=periodic_boundaries(2), cfl=0.5,
                           filter_interval=1, filter_alpha=0.3)
        solver = S3DSolver(state, cfg,
                           transport=PowerLawTransport(mech), reacting=False)
        u0 = state.u.copy()
        for _ in range(10):
            solver.step()
        rel = np.abs(state.u - u0).max() / np.abs(u0).max()
        assert rel < 1e-10


class TestViscousDissipation:
    @pytest.mark.slow
    def test_shear_layer_decays(self, air_mech_mod, air_y_mod):
        """A sinusoidal shear profile decays at the viscous rate."""
        mech, Y = air_mech_mod, air_y_mod
        n, L = 48, 1e-3
        grid = Grid((n,), (L,), periodic=(True,))
        x = grid.coords[0]
        v = 1.0 * np.sin(2 * np.pi * x / L)
        # 1D grid: the single velocity component varies along x; use a 2D
        # grid with transverse shear instead
        grid2 = Grid((12, n), (L, L), periodic=(True, True))
        xx, yy = grid2.meshgrid()
        u = 1.0 * np.sin(2 * np.pi * yy / L)
        rho = mech.density(P_ATM, 300.0, Y)
        state = State.from_primitive(mech, grid2, rho, [u, np.zeros_like(u)], 300.0, Y)
        tr = PowerLawTransport(mech, mu_ref=1.8e-5, t_ref=300.0, exponent=0.0)
        cfg = SolverConfig(boundaries=periodic_boundaries(2), cfl=0.5,
                           filter_interval=0)
        solver = S3DSolver(state, cfg, transport=tr, reacting=False)
        nu = 1.8e-5 / float(rho)
        k = 2 * np.pi / L
        t_end = 0.05 / (nu * k * k)
        while solver.time < t_end:
            solver.step()
        _, vel, _, _, _, _ = state.primitives()
        amp = np.abs(vel[0]).max()
        expected = np.exp(-nu * k * k * solver.time)
        assert amp == pytest.approx(expected, rel=0.05)


class TestNSCBC:
    def test_outflow_reflection_small(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((96,), (1.0,), periodic=(False,))
        state = ic.pressure_pulse(mech, grid, p0=P_ATM, T0=300.0, Y=Y,
                                  amplitude=1e-3, width=0.05)
        bc = {(0, 0): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM),
              (0, 1): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM)}
        cfg = SolverConfig(boundaries=bc, cfl=0.5, filter_interval=1,
                           filter_alpha=0.2)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        a = float(mech.sound_speed(np.array(300.0), Y))
        while solver.time < 1.0 / a:
            solver.step()
        _, _, _, p, _, _ = state.primitives()
        # after one crossing both pulses have exited; residual < 3 %
        assert np.abs(p - P_ATM).max() / (1e-3 * P_ATM) < 0.03

    @pytest.mark.slow
    def test_long_time_stability(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((64,), (0.5,), periodic=(False,))
        state = ic.pressure_pulse(mech, grid, p0=P_ATM, T0=300.0, Y=Y,
                                  amplitude=1e-3, width=0.03)
        bc = {(0, 0): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM),
              (0, 1): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM)}
        cfg = SolverConfig(boundaries=bc, cfl=0.5, filter_interval=1,
                           filter_alpha=0.2)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        a = float(mech.sound_speed(np.array(300.0), Y))
        while solver.time < 5.0 * 0.5 / a:
            solver.step()
        _, _, _, p, _, _ = state.primitives()
        assert np.isfinite(p).all()
        assert np.abs(p - P_ATM).max() / (1e-3 * P_ATM) < 0.1

    def test_hard_inflow_holds_primitives(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((64,), (0.5,), periodic=(False,))
        state = ic.uniform(mech, grid, p=P_ATM, T=300.0, Y=Y, velocity=[50.0])
        bc = {(0, 0): BoundarySpec("hard_inflow", velocity=[np.array(50.0)],
                                   temperature=np.array(300.0),
                                   mass_fractions=Y),
              (0, 1): BoundarySpec("nonreflecting_outflow", p_inf=P_ATM)}
        cfg = SolverConfig(boundaries=bc, cfl=0.5, filter_interval=1,
                           filter_alpha=0.2)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        for _ in range(100):
            solver.step()
        _, vel, T, _, _, _ = state.primitives()
        assert vel[0][0] == pytest.approx(50.0, rel=1e-6)
        assert T[0] == pytest.approx(300.0, rel=1e-6)

    def test_boundary_validation(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((64,), (0.5,), periodic=(False,))
        state = ic.uniform(mech, grid, p=P_ATM, T=300.0, Y=Y)
        cfg = SolverConfig(boundaries={(0, 0): BoundarySpec("periodic")})
        with pytest.raises(ValueError):
            S3DSolver(state, cfg)


class TestSolverMachinery:
    def test_monitor_history(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((32,), (1.0,), periodic=(True,))
        state = ic.uniform(mech, grid, p=P_ATM, T=300.0, Y=Y)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), cfl=0.5)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        solver.run(6, monitor_interval=2)
        assert len(solver.monitor_history) == 3
        step, t, mm = solver.monitor_history[0]
        assert "rho" in mm

    def test_hooks_fire(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((32,), (1.0,), periodic=(True,))
        state = ic.uniform(mech, grid, p=P_ATM, T=300.0, Y=Y)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), cfl=0.5)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        calls = []
        solver.checkpoint_hook = lambda s, t, st: calls.append(("c", s))
        solver.insitu_hook = lambda s, t, st: calls.append(("v", s))
        solver.run(4, checkpoint_interval=2, insitu_interval=4)
        assert ("c", 2) in calls and ("c", 4) in calls and ("v", 4) in calls

    def test_fixed_dt_honored(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((32,), (1.0,), periodic=(True,))
        state = ic.uniform(mech, grid, p=P_ATM, T=300.0, Y=Y)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=1e-7)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        assert solver.step() == 1e-7

    def test_stable_dt_positive(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((32,), (1.0,), periodic=(True,))
        state = ic.uniform(mech, grid, p=P_ATM, T=300.0, Y=Y)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), cfl=0.5)
        solver = S3DSolver(state, cfg, transport=ConstantLewisTransport(mech),
                           reacting=False)
        dt = solver.compute_dt()
        assert 0 < dt < 1.0

    def test_performance_report(self, air_mech_mod, air_y_mod):
        mech, Y = air_mech_mod, air_y_mod
        grid = Grid((32,), (1.0,), periodic=(True,))
        state = ic.uniform(mech, grid, p=P_ATM, T=300.0, Y=Y)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), cfl=0.5)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        solver.run(2)
        assert "integrate" in solver.performance_report()
