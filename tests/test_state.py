"""Tests for conserved-variable state and primitive recovery."""

import numpy as np
import pytest

from repro.core import Grid, State
from repro.util.constants import P_ATM


@pytest.fixture
def small_grid():
    return Grid((12, 16), (1e-3, 1e-3), periodic=(True, True))


class TestStateLayout:
    def test_variable_count(self, h2_mech, small_grid):
        st = State(h2_mech, small_grid)
        # rho + 2 momenta + energy + (Ns-1) species
        assert st.nvar == 2 + 2 + (h2_mech.n_species - 1)
        assert st.u.shape == (st.nvar, 12, 16)

    def test_indices_distinct(self, h2_mech, small_grid):
        st = State(h2_mech, small_grid)
        idx = [st.i_rho, st.i_mom(0), st.i_mom(1), st.i_energy]
        idx += [st.i_species(k) for k in range(st.n_transported)]
        assert len(set(idx)) == st.nvar

    def test_wrong_shape_rejected(self, h2_mech, small_grid):
        with pytest.raises(ValueError, match="shape"):
            State(h2_mech, small_grid, u=np.zeros((3, 12, 16)))

    def test_variable_names(self, h2_mech, small_grid):
        names = State(h2_mech, small_grid).variable_names()
        assert names[0] == "rho"
        assert "rho_Y_H2" in names
        assert "rho_Y_N2" not in names  # last species not transported


class TestPrimitiveRoundtrip:
    def test_roundtrip(self, h2_mech, small_grid, h2_air_stoich):
        rng = np.random.default_rng(0)
        shape = small_grid.shape
        T = 500.0 + 1000.0 * rng.random(shape)
        u0 = 10.0 * rng.standard_normal(shape)
        v0 = 10.0 * rng.standard_normal(shape)
        Y = h2_air_stoich[:, None, None] * np.ones((1,) + shape)
        rho = h2_mech.density(P_ATM, T, Y)
        st = State.from_primitive(h2_mech, small_grid, rho, [u0, v0], T, Y)
        rho2, vel2, T2, p2, Y2, e0 = st.primitives()
        np.testing.assert_allclose(rho2, rho, rtol=1e-12)
        np.testing.assert_allclose(vel2[0], u0, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(T2, T, rtol=1e-8)
        np.testing.assert_allclose(p2, P_ATM, rtol=1e-8)
        np.testing.assert_allclose(Y2, Y, atol=1e-12)

    def test_uniform_scalars_broadcast(self, air_mech, small_grid, air_y):
        st = State.from_primitive(air_mech, small_grid, 1.2, [0.0, 0.0], 300.0, air_y)
        rho, vel, T, p, Y, _ = st.primitives()
        np.testing.assert_allclose(T, 300.0, rtol=1e-9)

    def test_mass_fraction_constraint(self, h2_mech, small_grid, h2_air_stoich):
        st = State.from_primitive(
            h2_mech, small_grid, 1.0, [0.0, 0.0], 400.0, h2_air_stoich
        )
        Y = st.mass_fractions()
        np.testing.assert_allclose(Y.sum(axis=0), 1.0, atol=1e-12)

    def test_velocity_count_checked(self, air_mech, small_grid, air_y):
        with pytest.raises(ValueError, match="velocity"):
            State.from_primitive(air_mech, small_grid, 1.0, [0.0], 300.0, air_y)

    def test_copy_independent(self, air_mech, small_grid, air_y):
        st = State.from_primitive(air_mech, small_grid, 1.0, [0.0, 0.0], 300.0, air_y)
        st2 = st.copy()
        st2.u[0] += 1.0
        assert st.u[0].max() < st2.u[0].max()

    def test_total_mass(self, air_mech, air_y):
        grid = Grid((16, 16), (2.0, 3.0), periodic=(True, True))
        st = State.from_primitive(air_mech, grid, 1.5, [0.0, 0.0], 300.0, air_y)
        assert st.total_mass() == pytest.approx(1.5 * 6.0, rel=1e-12)

    def test_min_max_monitor(self, air_mech, small_grid, air_y):
        st = State.from_primitive(air_mech, small_grid, 1.0, [2.0, -1.0], 300.0, air_y)
        mm = st.min_max()
        lo, hi = mm["rho_u0"]
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(2.0)
        assert set(mm) == set(st.variable_names())
