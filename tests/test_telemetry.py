"""Tests for the unified telemetry layer: span nesting and exclusive-time
accounting, metric instrument semantics, exporter round-trips, the no-op
backend, and the instrumented hot paths (solver kernels, halo exchange,
I/O substrate, workflow actors, profiler export)."""

import io
import json

import numpy as np
import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    NULL_TELEMETRY,
    MetricsRegistry,
    MonitorWriter,
    NullTelemetry,
    Telemetry,
    Tracer,
    from_json,
    parse_monitor_text,
    parse_profile_report,
    profile_report,
)
from repro.telemetry import get_telemetry, resolve, set_default


class FakeClock:
    """Deterministic clock: advances by an explicit tick() call only."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture(autouse=True)
def _isolate_process_default():
    """Tests that install a process default must not leak it."""
    yield
    set_default(None)


class TestSpans:
    def test_single_span_inclusive_equals_exclusive(self, clock):
        tr = Tracer(clock=clock)
        with tr.span("a"):
            clock.tick(2.0)
        assert tr.stats["a"].inclusive == 2.0
        assert tr.stats["a"].exclusive == 2.0
        assert tr.stats["a"].count == 1

    def test_nested_exclusive_subtracts_child(self, clock):
        tr = Tracer(clock=clock)
        with tr.span("outer"):
            clock.tick(1.0)
            with tr.span("inner"):
                clock.tick(3.0)
            clock.tick(1.0)
        assert tr.stats["outer"].inclusive == 5.0
        assert tr.stats["outer"].exclusive == 2.0
        assert tr.stats["inner"].inclusive == 3.0
        assert tr.stats["inner"].exclusive == 3.0

    def test_exclusive_subtracts_only_direct_children(self, clock):
        tr = Tracer(clock=clock)
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    clock.tick(4.0)
        # a's direct child b has inclusive 4; a gets exclusive 0, not -4
        assert tr.stats["a"].exclusive == 0.0
        assert tr.stats["b"].exclusive == 0.0
        assert tr.stats["c"].exclusive == 4.0

    def test_sibling_children_both_subtracted(self, clock):
        tr = Tracer(clock=clock)
        with tr.span("p"):
            with tr.span("c1"):
                clock.tick(1.0)
            clock.tick(2.0)
            with tr.span("c2"):
                clock.tick(3.0)
        assert tr.stats["p"].inclusive == 6.0
        assert tr.stats["p"].exclusive == 2.0

    def test_recursion_aggregates_per_name(self, clock):
        tr = Tracer(clock=clock)
        with tr.span("f"):
            clock.tick(1.0)
            with tr.span("f"):
                clock.tick(2.0)
        # name table: two calls, inclusive 3 + 2, exclusive 1 + 2
        assert tr.stats["f"].count == 2
        assert tr.stats["f"].inclusive == 5.0
        assert tr.stats["f"].exclusive == 3.0
        # path table separates the recursion levels
        assert tr.path_stats["f"].inclusive == 3.0
        assert tr.path_stats["f/f"].inclusive == 2.0

    def test_path_aggregation(self, clock):
        tr = Tracer(clock=clock)
        for _ in range(2):
            with tr.span("step"):
                with tr.span("deriv"):
                    clock.tick(1.0)
        with tr.span("deriv"):
            clock.tick(5.0)
        assert tr.path_stats["step/deriv"].count == 2
        assert tr.path_stats["step/deriv"].inclusive == 2.0
        assert tr.path_stats["deriv"].inclusive == 5.0
        assert tr.stats["deriv"].count == 3

    def test_depth_and_current_path(self, clock):
        tr = Tracer(clock=clock)
        assert tr.depth == 0 and tr.current_path == ""
        with tr.span("a"):
            with tr.span("b"):
                assert tr.depth == 2
                assert tr.current_path == "a/b"
        assert tr.depth == 0

    def test_span_exits_on_exception(self, clock):
        tr = Tracer(clock=clock)
        with pytest.raises(RuntimeError, match="boom"):
            with tr.span("x"):
                clock.tick(1.0)
                raise RuntimeError("boom")
        assert tr.depth == 0
        assert tr.stats["x"].count == 1
        # a later span is not misattributed as a child of "x"
        with tr.span("y"):
            clock.tick(1.0)
        assert tr.path_stats["y"].count == 1

    def test_end_without_begin_raises(self):
        tr = Tracer()
        with pytest.raises(RuntimeError, match="without matching begin"):
            tr._end({})

    def test_reset_refuses_active_spans(self, clock):
        tr = Tracer(clock=clock)
        with pytest.raises(RuntimeError, match="active spans"):
            with tr.span("a"):
                tr.reset()
        tr.reset()
        assert tr.stats == {} and tr.path_stats == {}

    def test_span_counters_reach_metrics(self, clock):
        tel = Telemetry(clock=clock)
        with tel.span("halo", bytes=512, messages=2):
            clock.tick(1.0)
        assert tel.metrics.counter("halo.bytes").value == 512
        assert tel.metrics.counter("halo.messages").value == 2

    def test_accessor_dicts_sorted(self, clock):
        tr = Tracer(clock=clock)
        for name in ("zeta", "alpha", "mid"):
            with tr.span(name):
                clock.tick(1.0)
        assert list(tr.exclusive_times()) == ["alpha", "mid", "zeta"]
        assert list(tr.inclusive_times()) == ["alpha", "mid", "zeta"]
        assert tr.call_counts() == {"alpha": 1, "mid": 1, "zeta": 1}

    def test_trace_decorator(self, clock):
        tel = Telemetry(clock=clock)

        @tel.trace()
        def kernel():
            clock.tick(2.0)
            return 42

        assert kernel() == 42
        assert kernel.__name__ == "kernel"
        assert tel.tracer.stats["kernel"].inclusive == 2.0

        @tel.trace("renamed")
        def other():
            clock.tick(1.0)

        other()
        assert "renamed" in tel.tracer.stats


class TestMetrics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("n") is c  # create-on-first-use, then cached

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_last_value_wins(self):
        g = MetricsRegistry().gauge("dt")
        g.set(1e-8)
        g.set(2e-8)
        assert g.value == 2e-8
        assert g.updates == 2

    def test_histogram_bucket_edges(self):
        h = MetricsRegistry().histogram("t", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 9.0):
            h.observe(v)
        # bisect_left: a value equal to a bound lands in that bound's bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(16.0)
        assert h.mean == pytest.approx(3.2)
        assert h.cumulative() == [2, 3, 4, 5]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            MetricsRegistry().histogram("t", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            MetricsRegistry().histogram("u", buckets=(1.0, 1.0))

    def test_histogram_reregistration_same_buckets_ok(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("t", buckets=(1.0, 2.0))
        assert reg.histogram("t", buckets=(1.0, 2.0)) is h1

    def test_histogram_reregistration_different_buckets_raises(self):
        reg = MetricsRegistry()
        reg.histogram("t", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("t", buckets=(1.0, 3.0))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_snapshot_sorted_and_jsonable(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(3)
        reg.counter("a").inc(1)
        reg.gauge("g").set(0.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.2)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 3
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(snap)  # must be plain data

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.counter("a").value == 0


class TestExporters:
    def _traced(self, clock):
        tel = Telemetry(clock=clock)
        with tel.span("INTEGRATE"):
            clock.tick(1.0)
            with tel.span("DERIVATIVES"):
                clock.tick(3.0)
            with tel.span("FILTER"):
                clock.tick(2.0)
        return tel

    def test_profile_report_round_trip(self, clock):
        tel = self._traced(clock)
        text = tel.profile_report()
        rows = parse_profile_report(text)
        assert set(rows) == {"INTEGRATE", "DERIVATIVES", "FILTER"}
        assert rows["DERIVATIVES"]["exclusive"] == pytest.approx(3.0)
        assert rows["INTEGRATE"]["exclusive"] == pytest.approx(1.0)
        assert rows["INTEGRATE"]["inclusive"] == pytest.approx(6.0)
        assert rows["DERIVATIVES"]["calls"] == 1
        assert sum(r["percent"] for r in rows.values()) == pytest.approx(
            100.0, abs=0.2)

    def test_profile_report_sorted_by_exclusive(self, clock):
        text = self._traced(clock).profile_report()
        names = [line.split()[-1] for line in text.splitlines()
                 if line.split() and line.split()[0].endswith("%")]
        assert names == ["DERIVATIVES", "FILTER", "INTEGRATE"]

    def test_profile_report_empty_tracer(self):
        assert profile_report(Tracer()) == ""

    def test_json_round_trip(self, clock):
        tel = self._traced(clock)
        tel.counter("halo.bytes").inc(1024)
        back = from_json(tel.to_json(indent=2))
        assert back == tel.snapshot()
        assert back["spans"]["DERIVATIVES"]["exclusive"] == 3.0
        assert back["paths"]["INTEGRATE/FILTER"]["inclusive"] == 2.0
        assert back["metrics"]["counters"]["halo.bytes"] == 1024

    def test_monitor_writer_round_trip(self):
        w = MonitorWriter()
        w.write_step(3, 1.5e-6, {"rho": (0.9, 1.1), "rho_E": (-2.0, 3.0e5)})
        w.write_step(4, 2.0e-6, {"rho": (0.89, 1.12)})
        rows = parse_monitor_text(w.text())
        assert len(rows) == 3
        assert rows[0] == {"step": 3, "variable": "rho", "min": 0.9, "max": 1.1}
        assert rows[2]["step"] == 4
        assert w.steps_recorded == 2

    def test_monitor_lines_parse_like_minmaxparser(self):
        """Every line must survive the workflow MinMaxParser's unguarded
        int(parts[0]) — i.e. no headers, exactly one record per line."""
        w = MonitorWriter()
        w.write_step(0, 0.0, {"rho": (1.0, 1.0)})
        w.write_step(1, 1e-8, {"rho": (0.99, 1.01)})
        for line in w.text().splitlines():
            parts = line.split()
            assert len(parts) == 5
            int(parts[0])
            float(parts[2]), float(parts[3]), float(parts[4])

    def test_monitor_writer_stream(self):
        buf = io.StringIO()
        w = MonitorWriter(stream=buf)
        w.write_step(7, 0.0, {"rho": (1.0, 2.0)})
        assert buf.getvalue() == w.text()


class TestBackendSelection:
    def test_null_backend_records_nothing(self):
        tel = NullTelemetry()
        with tel.span("a", bytes=10):
            pass
        tel.counter("c").inc(5)
        tel.gauge("g").set(1.0)
        tel.histogram("h").observe(0.1)
        assert tel.profile_report() == ""
        assert tel.snapshot() == {
            "spans": {}, "paths": {},
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        assert from_json(tel.to_json()) == tel.snapshot()

    def test_null_trace_returns_function_unchanged(self):
        def f():
            return 1

        assert NULL_TELEMETRY.trace()(f) is f

    def test_env_variable_enables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        set_default(None)
        assert get_telemetry().enabled
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        set_default(None)
        assert not get_telemetry().enabled

    def test_env_default_is_null(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        set_default(None)
        assert get_telemetry() is NULL_TELEMETRY

    def test_resolve_explicit_wins(self):
        tel = Telemetry()
        assert resolve(tel) is tel
        set_default(tel)
        assert resolve(None) is tel

    def test_null_backend_overhead_is_small(self):
        """The disabled hot path (one shared no-op context manager) must
        stay within a small constant factor of a bare loop."""
        import timeit

        tel = NULL_TELEMETRY
        span = tel.span  # the form hot code uses

        def with_span():
            with span("KERNEL"):
                pass

        def bare():
            pass

        n = 20000
        t_span = min(timeit.repeat(with_span, number=n, repeat=3))
        t_bare = min(timeit.repeat(bare, number=n, repeat=3))
        # generous ceiling: a no-op context manager is a few hundred ns
        assert t_span < 50 * max(t_bare, 1e-9) + 0.05


class TestSolverIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self, h2_mech, h2_air_stoich):
        from repro.core import Grid, S3DSolver, SolverConfig, State
        from repro.core.config import periodic_boundaries
        from repro.transport import ConstantLewisTransport
        from repro.util.constants import P_ATM

        grid = Grid((16, 16), (1e-3, 1e-3), periodic=(True, True))
        xx, yy = grid.meshgrid()
        T = 900.0 + 400.0 * np.exp(
            -((xx - 5e-4) ** 2 + (yy - 5e-4) ** 2) / (2 * (2e-4) ** 2))
        Y = h2_air_stoich[:, None, None] * np.ones((1, 16, 16))
        from repro.util.constants import P_ATM as p0
        rho = h2_mech.density(p0, T, Y)
        state = State.from_primitive(h2_mech, grid, rho, [1.0, 0.0], T, Y)
        cfg = SolverConfig(boundaries=periodic_boundaries(2), dt=2e-8,
                           filter_interval=1, filter_alpha=0.2,
                           telemetry=True)
        solver = S3DSolver(state, cfg, transport=ConstantLewisTransport(h2_mech),
                           reacting=True)
        solver.monitor_writer = MonitorWriter()
        for _ in range(3):
            solver.step()
            solver.record_monitor()
        return solver

    def test_kernel_set_matches_perfmodel_inventory(self, traced_run):
        from repro.perfmodel.kernels import s3d_kernel_inventory

        inventory = {k.name for k in s3d_kernel_inventory()}
        traced = set(traced_run.telemetry.tracer.stats)
        assert inventory <= traced

    def test_profile_report_parses(self, traced_run):
        rows = parse_profile_report(traced_run.profile_report())
        assert "REACTION_RATES" in rows
        assert rows["INTEGRATE"]["calls"] == 3
        assert all(r["exclusive"] >= 0 for r in rows.values())

    def test_exclusive_sums_to_root_inclusive(self, traced_run):
        """Total exclusive time over all spans equals the inclusive time
        of the top-level (root) paths — the TAU invariant that makes the
        flat profile's percentages sum to the traced wall time."""
        tr = traced_run.telemetry.tracer
        total_excl = sum(s.exclusive for s in tr.stats.values())
        root_incl = sum(s.inclusive for path, s in tr.path_stats.items()
                        if "/" not in path)
        assert total_excl == pytest.approx(root_incl, rel=1e-9)

    def test_solver_metrics(self, traced_run):
        m = traced_run.telemetry.metrics
        assert m.counter("solver.steps").value == 3
        assert m.gauge("solver.dt").value == pytest.approx(2e-8)

    def test_monitor_lines_match_state_minmax(self, traced_run):
        rows = parse_monitor_text(traced_run.monitor_writer.text())
        names = traced_run.state.variable_names()
        assert len(rows) == 3 * len(names)
        mm = traced_run.state.min_max()
        last = {r["variable"]: r for r in rows if r["step"] == 3}
        for name, (lo, hi) in mm.items():
            assert last[name]["min"] == pytest.approx(lo, rel=1e-12)
            assert last[name]["max"] == pytest.approx(hi, rel=1e-12)

    def test_config_telemetry_false_is_noop(self, h2_mech, h2_air_stoich):
        from repro.core import Grid, S3DSolver, SolverConfig, ic
        from repro.core.config import periodic_boundaries
        from repro.util.constants import P_ATM

        grid = Grid((16,), (1.0,), periodic=(True,))
        state = ic.uniform(h2_mech, grid, p=P_ATM, T=300.0, Y=h2_air_stoich)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=1e-8,
                           telemetry=False)
        solver = S3DSolver(state, cfg, transport=None, reacting=False)
        solver.step()
        assert not solver.telemetry.enabled
        assert solver.profile_report() == ""

    def test_explicit_instance_beats_config(self, h2_mech, h2_air_stoich):
        from repro.core import Grid, S3DSolver, SolverConfig, ic
        from repro.core.config import periodic_boundaries
        from repro.util.constants import P_ATM

        grid = Grid((16,), (1.0,), periodic=(True,))
        state = ic.uniform(h2_mech, grid, p=P_ATM, T=300.0, Y=h2_air_stoich)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=1e-8,
                           telemetry=False)
        tel = Telemetry()
        solver = S3DSolver(state, cfg, transport=None, reacting=False,
                           telemetry=tel)
        solver.step()
        assert solver.telemetry is tel
        assert "INTEGRATE" in tel.tracer.stats


class TestParallelIntegration:
    def test_halo_bytes_counter_matches_message_log(self):
        from repro.parallel import CartesianDecomposition, HaloExchanger, SimMPI

        tel = Telemetry()
        d = CartesianDecomposition((16, 12), (2, 2), periodic=(True, True))
        world = SimMPI(4)
        h = HaloExchanger(d, world, width=3, telemetry=tel)
        a = np.random.default_rng(0).random((16, 12))
        h.exchange(d.scatter(a))
        assert tel.metrics.counter("halo.bytes").value == world.log.total_bytes
        assert tel.metrics.counter("halo.messages").value == world.log.count
        assert "HALO_EXCHANGE" in tel.tracer.stats

    def test_parallel_solver_traces_integrate(self, h2_mech):
        from repro.core import Grid
        from repro.core.ic import uniform
        from repro.parallel import CartesianDecomposition, SimMPI
        from repro.parallel.solver import ParallelPeriodicSolver
        from repro.util.constants import P_ATM

        # blocks must be at least DEEP_HALO (9) wide: 24/2 = 12
        tel = Telemetry()
        grid = Grid((24, 24), (1e-3, 1e-3), periodic=(True, True))
        d = CartesianDecomposition((24, 24), (2, 2), periodic=(True, True))
        world = SimMPI(4)
        par = ParallelPeriodicSolver(h2_mech, grid, d, world, telemetry=tel)
        Y = np.zeros(h2_mech.n_species)
        Y[h2_mech.index("N2")] = 1.0
        state = uniform(h2_mech, grid, p=P_ATM, T=300.0, Y=Y)
        par.set_state(state.u)
        par.step(1e-8)
        assert "INTEGRATE" in tel.tracer.stats
        assert tel.metrics.counter("halo.bytes").value > 0


class TestIOIntegration:
    def _fs(self):
        from repro.io import SimFileSystem
        from repro.io.filesystem import FSConfig

        return SimFileSystem(FSConfig(name="t", lock_unit=512, n_servers=4))

    def test_mpiio_write_counters(self):
        from repro.io import BlockLayout, collective_write, independent_write

        tel = Telemetry()
        layout = BlockLayout((8, 8, 4), (2, 2, 1))
        a = np.random.default_rng(1).random((8, 8, 4))
        independent_write(self._fs(), layout, a, "indep", telemetry=tel)
        assert tel.metrics.counter("io.mpiio.bytes").value == layout.total_bytes
        assert tel.metrics.counter("io.mpiio.requests").value > 0
        assert tel.metrics.histograms["io.open_time"].count == 1

        tel2 = Telemetry()
        collective_write(self._fs(), layout, a, "coll", telemetry=tel2)
        assert tel2.metrics.counter("io.mpiio.bytes").value == layout.total_bytes
        assert tel2.metrics.counter("io.mpiio.shuffle_bytes").value >= 0
        assert tel2.metrics.histograms["io.mpiio.write_time"].count == 1

    def test_writebehind_counters(self):
        from repro.io import TwoStageWriteBehind

        tel = Telemetry()
        fs = self._fs()
        w = TwoStageWriteBehind(fs, "wb", n_ranks=2, telemetry=tel)
        payload = b"x" * 2048
        w.write(0, 0, payload)
        w.write(1, 2048, payload)
        w.close()
        assert tel.metrics.counter("io.writebehind.bytes").value == 4096
        assert tel.metrics.counter("io.writebehind.flushes").value > 0
        assert tel.metrics.histograms["io.writebehind.close_time"].count == 1
        assert fs.file_bytes("wb") == payload + payload

    def test_checkpoint_span_and_counters(self):
        from repro.io import S3DCheckpoint

        tel = Telemetry()
        ck = S3DCheckpoint(proc_shape=(2, 1, 1), block=(4, 4, 4), telemetry=tel)
        arrays = [np.random.default_rng(2).random(ck.global_shape + (m,))
                  if m > 1 else np.random.default_rng(2).random(ck.global_shape)
                  for _, m in __import__("repro.io.s3dio",
                                         fromlist=["CHECKPOINT_VARS"]).CHECKPOINT_VARS]
        ck.write_checkpoint(self._fs(), "independent", arrays, 0)
        assert tel.metrics.counter("io.checkpoint.count").value == 1
        assert tel.metrics.counter("io.checkpoint.bytes").value == \
            ck.bytes_per_checkpoint
        assert "CHECKPOINT" in tel.tracer.stats


class TestWorkflowIntegration:
    def test_director_actor_spans_and_counters(self):
        from repro.workflow import ProcessNetworkDirector, Token, Workflow
        from repro.workflow.actor import Actor

        class Source(Actor):
            inputs: list = []
            outputs = ["out"]

            def __init__(self):
                super().__init__("src")
                self.n = 0

            def fire(self, inputs):
                if self.n >= 3:
                    return None
                self.n += 1
                return {"out": Token(self.n)}

        class Sink(Actor):
            inputs = ["in"]
            outputs: list = []

            def __init__(self):
                super().__init__("sink")
                self.got = []

            def fire(self, inputs):
                self.got.append(inputs["in"].value)
                return None

        tel = Telemetry()
        wf = Workflow()
        src, sink = Source(), Sink()
        wf.add(src)
        wf.add(sink)
        wf.connect("src", "out", "sink", "in")
        director = ProcessNetworkDirector(wf, telemetry=tel)
        director.run()
        assert sink.got == [1, 2, 3]
        assert tel.tracer.stats["actor.sink"].count == 3
        # sources are polled every round, including empty ones
        assert tel.tracer.stats["actor.src"].count >= 3
        assert tel.metrics.counter("workflow.firings").value == director.firings
        assert tel.metrics.counter("workflow.rounds").value == director.rounds


class TestProfilerIntegration:
    def test_simprofiler_nested_exclusive(self, clock):
        from repro.perfmodel.profiler import SimProfiler

        tel = Telemetry(clock=clock)
        prof = SimProfiler(telemetry=tel)

        def inner_fn():
            clock.tick(3.0)

        inner = prof.instrument("INNER", inner_fn)

        def outer_fn():
            clock.tick(1.0)
            inner()

        outer = prof.instrument("OUTER", outer_fn)
        outer()
        times = prof.exclusive_times()
        assert times["OUTER"] == pytest.approx(1.0)
        assert times["INNER"] == pytest.approx(3.0)
        assert "OUTER" in prof.report()

    def test_simprofiler_without_telemetry_keeps_flat_totals(self):
        from repro.perfmodel.profiler import SimProfiler

        prof = SimProfiler()
        f = prof.instrument("K", lambda: None)
        f()
        f()
        assert prof.timers("K").count == 2
        assert "K" in prof.report()

    def test_rank_profile_from_telemetry(self, clock):
        from repro.perfmodel.profiler import class_means, rank_profile_from_telemetry

        tel = Telemetry(clock=clock)
        with tel.span("INTEGRATE"):
            clock.tick(1.0)
            with tel.span("DERIVATIVES"):
                clock.tick(4.0)
        p = rank_profile_from_telemetry(tel, rank=5)
        assert p.rank == 5 and p.node_type == "measured"
        assert p.exclusive["DERIVATIVES"] == pytest.approx(4.0)
        assert p.total == pytest.approx(5.0)
        means = class_means([p])
        assert means["measured"]["INTEGRATE"] == pytest.approx(1.0)

    def test_measured_kernel_weights_accepts_tracer(self, clock):
        from repro.perfmodel.kernels import measured_kernel_weights

        tel = Telemetry(clock=clock)
        with tel.span("A"):
            clock.tick(3.0)
        with tel.span("B"):
            clock.tick(1.0)
        w = measured_kernel_weights(tel.tracer)
        assert w["A"] == pytest.approx(0.75)
        assert w["B"] == pytest.approx(0.25)


class TestMergeAndDelta:
    """Satellite semantics for cross-rank fusion: merge is associative
    with the empty backend as identity; delta snapshots only carry what
    changed."""

    def _loaded(self, clock, spans=1, x=2.0, g=1.0, h=(0.1,)):
        tel = Telemetry(clock=clock)
        for _ in range(spans):
            with tel.span("K"):
                clock.tick(1.0)
        tel.counter("x").inc(x)
        tel.gauge("g").set(g)
        for v in h:
            tel.histogram("h").observe(v)
        return tel

    def test_merge_sums_counters_spans_histograms(self, clock):
        a = self._loaded(clock, spans=2, x=2.0, h=(0.1,))
        b = self._loaded(clock, spans=3, x=3.0, h=(0.2, 0.3))
        a.merge(b)
        s = a.snapshot()
        assert s["metrics"]["counters"]["x"] == pytest.approx(5.0)
        assert s["spans"]["K"]["count"] == 5
        assert s["spans"]["K"]["exclusive"] == pytest.approx(5.0)
        assert s["metrics"]["histograms"]["h"]["count"] == 3
        assert s["metrics"]["histograms"]["h"]["sum"] == pytest.approx(0.6)

    def test_merge_gauge_takes_max(self, clock):
        a = self._loaded(clock, g=1.5)
        b = self._loaded(clock, g=0.5)
        a.merge(b)
        assert a.snapshot()["metrics"]["gauges"]["g"] == pytest.approx(1.5)

    def test_merge_empty_is_identity(self, clock):
        a = self._loaded(clock, spans=2, x=4.0, g=2.0, h=(0.1, 0.2))
        before = a.snapshot()
        a.merge(Telemetry())          # fresh backend: nothing recorded
        a.merge(NULL_TELEMETRY)       # disabled backend: contributes nothing
        assert a.snapshot() == before

    def test_merge_is_associative(self):
        def make(i):
            c = FakeClock()
            tel = Telemetry(clock=c)
            for _ in range(i + 1):
                with tel.span("K"):
                    c.tick(float(i + 1))
            tel.counter("x").inc(i + 1)
            tel.gauge("g").set(float(i))
            tel.histogram("h").observe(0.1 * (i + 1))
            return tel

        # (a + b) + c
        left = make(0).merge(make(1)).merge(make(2)).snapshot()
        # a + (b + c)
        right = make(0).merge(make(1).merge(make(2))).snapshot()
        # identical up to float summation order in the accumulated sums
        assert left["spans"]["K"]["count"] == right["spans"]["K"]["count"]
        assert left["spans"]["K"]["exclusive"] == pytest.approx(
            right["spans"]["K"]["exclusive"])
        lm, rm = left["metrics"], right["metrics"]
        assert lm["counters"] == rm["counters"]
        assert lm["gauges"] == rm["gauges"]
        assert lm["histograms"]["h"]["counts"] == rm["histograms"]["h"]["counts"]
        assert lm["histograms"]["h"]["count"] == rm["histograms"]["h"]["count"]
        assert lm["histograms"]["h"]["sum"] == pytest.approx(
            rm["histograms"]["h"]["sum"])

    def test_null_merge_returns_null(self):
        out = NULL_TELEMETRY.merge(Telemetry())
        assert out is NULL_TELEMETRY

    def test_delta_snapshot_only_reports_changes(self, clock):
        tel = self._loaded(clock, spans=1, x=2.0)
        first = tel.snapshot(delta=True)
        assert first["metrics"]["counters"]["x"] == pytest.approx(2.0)
        # nothing happened: empty delta
        quiet = tel.snapshot(delta=True)
        assert quiet["metrics"]["counters"] == {}
        assert quiet["spans"] == {}
        tel.counter("x").inc(5.0)
        with tel.span("K"):
            clock.tick(2.0)
        d = tel.snapshot(delta=True)
        assert d["metrics"]["counters"] == {"x": pytest.approx(5.0)}
        assert d["spans"]["K"]["count"] == 1
        assert d["spans"]["K"]["exclusive"] == pytest.approx(2.0)

    def test_delta_does_not_disturb_full_snapshot(self, clock):
        tel = self._loaded(clock, x=2.0)
        tel.snapshot(delta=True)
        tel.counter("x").inc(1.0)
        assert tel.snapshot()["metrics"]["counters"]["x"] == pytest.approx(3.0)

    def test_null_snapshot_accepts_delta_kwarg(self):
        out = NULL_TELEMETRY.snapshot(delta=True)
        assert out["spans"] == {} and out["metrics"]["counters"] == {}

    def test_reset_clears_delta_baseline(self, clock):
        tel = self._loaded(clock, x=2.0)
        tel.snapshot(delta=True)
        tel.reset()
        tel.counter("x").inc(7.0)
        d = tel.snapshot(delta=True)
        assert d["metrics"]["counters"]["x"] == pytest.approx(7.0)

    def test_merge_of_deltas_equals_delta_of_merge(self, clock):
        """The fusion-path invariant: accumulating per-interval delta
        snapshots from two backends reconstructs exactly what a single
        merge of their final states reports — no activity is double
        counted or lost at the snapshot boundaries."""

        def act(tel, spans, x, hvals):
            for _ in range(spans):
                with tel.span("K"):
                    clock.tick(1.0)
            tel.counter("x").inc(x)
            for v in hvals:
                tel.histogram("h").observe(v)

        a, b = Telemetry(clock=clock), Telemetry(clock=clock)
        deltas = []
        # interval 1
        act(a, spans=2, x=1.0, hvals=(0.1,))
        act(b, spans=1, x=2.0, hvals=(0.2, 0.3))
        deltas += [a.snapshot(delta=True), b.snapshot(delta=True)]
        # interval 2 (uneven: only a makes progress)
        act(a, spans=3, x=4.0, hvals=())
        deltas += [a.snapshot(delta=True), b.snapshot(delta=True)]

        # sum the deltas by hand
        span_count = sum(d["spans"].get("K", {}).get("count", 0)
                         for d in deltas)
        span_excl = sum(d["spans"].get("K", {}).get("exclusive", 0.0)
                        for d in deltas)
        x_total = sum(d["metrics"]["counters"].get("x", 0.0) for d in deltas)
        h_count = sum(d["metrics"]["histograms"].get("h", {}).get("count", 0)
                      for d in deltas)
        h_sum = sum(d["metrics"]["histograms"].get("h", {}).get("sum", 0.0)
                    for d in deltas)

        merged = a.merge(b).snapshot()
        assert merged["spans"]["K"]["count"] == span_count == 6
        assert merged["spans"]["K"]["exclusive"] == pytest.approx(span_excl)
        assert merged["metrics"]["counters"]["x"] == pytest.approx(
            x_total) == pytest.approx(7.0)
        assert merged["metrics"]["histograms"]["h"]["count"] == h_count == 3
        assert merged["metrics"]["histograms"]["h"]["sum"] == pytest.approx(
            h_sum)


class TestTimerTelemetryBridge:
    """Satellite: the legacy util.timers registry forwards elapsed times
    into telemetry histograms, healing the two-namespace drift."""

    def test_timer_observes_into_histogram(self):
        from repro.util.timers import TimerRegistry

        tel = Telemetry()
        reg = TimerRegistry(telemetry=tel)
        with reg("chemistry"):
            pass
        h = tel.snapshot()["metrics"]["histograms"]["timer.chemistry"]
        assert h["count"] == 1
        assert h["sum"] >= 0.0

    def test_no_telemetry_no_histograms(self):
        from repro.util.timers import TimerRegistry

        reg = TimerRegistry()
        with reg("chemistry"):
            pass
        assert reg.report()  # legacy path still works

    def test_null_telemetry_is_inert(self):
        from repro.util.timers import TimerRegistry

        reg = TimerRegistry(telemetry=NULL_TELEMETRY)
        with reg("chemistry"):
            pass
        assert "chemistry" in reg.timers

    def test_bind_telemetry_rebinds_existing_timers(self):
        from repro.util.timers import TimerRegistry

        reg = TimerRegistry()
        with reg("integrate"):
            pass
        tel = Telemetry()
        reg.bind_telemetry(tel)
        with reg("integrate"):
            pass
        h = tel.snapshot()["metrics"]["histograms"]["timer.integrate"]
        assert h["count"] == 1  # only the post-bind stop is forwarded

    def test_solver_timers_forward_when_telemetry_on(self, h2_mech,
                                                     h2_air_stoich):
        from repro.core import Grid, S3DSolver, SolverConfig, ic
        from repro.core.config import periodic_boundaries
        from repro.util.constants import P_ATM

        grid = Grid((16,), (1.0,), periodic=(True,))
        state = ic.pressure_pulse(h2_mech, grid, p0=P_ATM, T0=300.0,
                                  Y=h2_air_stoich, amplitude=1e-3, width=0.05)
        cfg = SolverConfig(boundaries=periodic_boundaries(1), dt=5e-8,
                           telemetry=True)
        s = S3DSolver(state, cfg, transport=None, reacting=False)
        s.step()
        hists = s.telemetry.snapshot()["metrics"]["histograms"]
        assert hists["timer.integrate"]["count"] == 1
