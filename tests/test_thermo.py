"""Tests for NASA-7 thermodynamics against known reference values."""

import numpy as np
import pytest

from repro.chemistry.thermo import Nasa7, ThermoTable
from repro.chemistry.mechanisms.thermo_data import nasa7, available
from repro.util.constants import RU, T_STANDARD


class TestNasa7:
    def test_requires_seven_coefficients(self):
        with pytest.raises(ValueError, match="7 coefficients"):
            Nasa7(300.0, 1000.0, 3000.0, (1.0,) * 6, (1.0,) * 7)

    def test_requires_ordered_ranges(self):
        with pytest.raises(ValueError, match="ordered"):
            Nasa7(1000.0, 300.0, 3000.0, (1.0,) * 7, (1.0,) * 7)

    def test_cp_n2_at_300k(self):
        # NIST: cp(N2, 300 K) = 29.12 J/mol/K
        fit = nasa7("N2")
        assert fit.cp_molar(300.0) == pytest.approx(29.12, rel=5e-3)

    def test_cp_h2o_at_1000k(self):
        # NIST: cp(H2O, 1000 K) ~ 41.3 J/mol/K
        assert nasa7("H2O").cp_molar(1000.0) == pytest.approx(41.3, rel=0.02)

    def test_formation_enthalpies(self):
        # standard heats of formation [kJ/mol]
        refs = {"H2O": -241.83, "CO2": -393.5, "CH4": -74.87, "OH": 39.0,
                "H": 218.0, "O": 249.2, "CO": -110.5}
        for name, href in refs.items():
            h = nasa7(name).enthalpy_molar(T_STANDARD) / 1e3
            # GRI-3.0 data; OH uses the older ~39 kJ/mol value
            assert h == pytest.approx(href, rel=0.03), name

    def test_elements_have_zero_formation_enthalpy(self):
        for name in ("H2", "O2", "N2"):
            h = nasa7(name).enthalpy_molar(T_STANDARD)
            assert abs(h) < 150.0, name  # J/mol — essentially zero

    def test_enthalpy_is_cp_integral(self):
        """dh/dT == cp at both range interiors (consistency of the fit)."""
        fit = nasa7("O2")
        for T in (400.0, 1500.0):
            dT = 1e-3
            dh = (fit.enthalpy_molar(T + dT) - fit.enthalpy_molar(T - dT)) / (2 * dT)
            assert dh == pytest.approx(fit.cp_molar(T), rel=1e-6)

    def test_entropy_derivative_is_cp_over_t(self):
        fit = nasa7("H2O")
        for T in (500.0, 2000.0):
            dT = 1e-3
            ds = (fit.entropy_molar(T + dT) - fit.entropy_molar(T - dT)) / (2 * dT)
            assert ds == pytest.approx(fit.cp_molar(T) / T, rel=1e-6)

    def test_entropy_n2_standard(self):
        # NIST: s(N2, 298.15 K) = 191.6 J/mol/K
        assert nasa7("N2").entropy_molar(T_STANDARD) == pytest.approx(191.6, rel=5e-3)

    def test_gibbs_definition(self):
        fit = nasa7("CO2")
        T = 1200.0
        g = fit.gibbs_over_rt(T)
        expected = fit.enthalpy_molar(T) / (RU * T) - fit.entropy_molar(T) / RU
        assert g == pytest.approx(expected, rel=1e-12)

    def test_vectorized_matches_scalar(self):
        fit = nasa7("CH4")
        T = np.array([300.0, 900.0, 1100.0, 2500.0])
        cp_vec = fit.cp_molar(T)
        for i, t in enumerate(T):
            assert cp_vec[i] == pytest.approx(float(fit.cp_molar(t)))

    def test_range_switch_continuity(self):
        """low/high ranges agree at T_mid to fit accuracy.

        Species used by the built-in kinetics get a tight bound; the
        minor-radical database extras (CH3, HCO, CH2O) a looser one.
        """
        loose = {"CH3", "HCO", "CH2O"}
        for name in available():
            fit = nasa7(name)
            lo = np.dot(fit.coeffs_low[:5], [fit.t_mid**k for k in range(5)])
            hi = np.dot(fit.coeffs_high[:5], [fit.t_mid**k for k in range(5)])
            tol = 5e-2 if name in loose else 1e-2
            assert lo == pytest.approx(hi, rel=tol), name


class TestThermoTable:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ThermoTable([])

    def test_matches_per_species_fits(self):
        names = ["H2", "O2", "H2O", "N2"]
        fits = [nasa7(n) for n in names]
        table = ThermoTable(fits)
        T = np.array([350.0, 1400.0])
        cp = table.cp_molar(T)
        h = table.enthalpy_molar(T)
        s = table.entropy_molar(T)
        for i, fit in enumerate(fits):
            np.testing.assert_allclose(cp[i], fit.cp_molar(T), rtol=1e-12)
            np.testing.assert_allclose(h[i], fit.enthalpy_molar(T), rtol=1e-12)
            np.testing.assert_allclose(s[i], fit.entropy_molar(T), rtol=1e-12)

    def test_multidimensional_shapes(self):
        table = ThermoTable([nasa7("O2"), nasa7("N2")])
        T = np.full((3, 4, 5), 800.0)
        assert table.cp_molar(T).shape == (2, 3, 4, 5)
        assert table.gibbs_over_rt(T).shape == (2, 3, 4, 5)

    def test_mixed_ranges_in_one_call(self):
        """Temperatures straddling t_mid pick the correct range per point."""
        table = ThermoTable([nasa7("O2")])
        T = np.array([500.0, 2000.0])
        both = table.cp_molar(T)[0]
        assert both[0] == pytest.approx(float(nasa7("O2").cp_molar(500.0)))
        assert both[1] == pytest.approx(float(nasa7("O2").cp_molar(2000.0)))
