"""Distributed tracing: context propagation, stitched timelines,
Perfetto export, critical-path analysis, and the live metrics endpoint.

The contract under test (ISSUE 10):

* every message-plane operation carries a compact ``(id, logical)``
  trace context *beside* the payload — enabling tracing never changes
  a byte of what a solver exchanges,
* per-process trace logs stitch into one causally-ordered global
  timeline (Lamport clocks for order, wall clocks for duration),
* the exported Chrome-trace/Perfetto JSON validates and carries flow
  arrows binding each send to its receive across rank pids,
* the trace-derived per-rank chemistry shares agree with the chemistry
  balancer's independently-measured ``rank_seconds`` within 5%,
* the metrics registry is scrapable over localhost HTTP in Prometheus
  text format,
* ``fixed_substeps`` plumbs from ``SolverConfig`` /
  ``REPRO_CHEM_FIXED_SUBSTEPS`` into the implicit integrator.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.observability import timeline
from repro.observability.endpoint import (
    MetricsEndpoint,
    metric_name,
    parse_prometheus_text,
    prometheus_text,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.tracing import (
    DRIVER_RANK,
    TraceContext,
    TraceEvent,
    TraceLog,
    classify_tag,
    resolve_tracing,
)

pytestmark = pytest.mark.tracing


class FakeClock:
    """Settable wall clock for deterministic durations."""

    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += float(dt)


# ---------------------------------------------------------------------------
# TraceLog unit behaviour
# ---------------------------------------------------------------------------
class TestTraceLog:
    def test_span_nesting_parents_and_duration(self):
        clock = FakeClock()
        log = TraceLog(clock=clock)
        outer = log.begin_span("STEP")
        clock.advance(1.0)
        inner = log.begin_span("RHS")
        clock.advance(2.0)
        log.end_span(inner)
        clock.advance(0.5)
        log.end_span(outer, steps=3)
        assert log.active == 0
        inner_ev, outer_ev = log.events  # appended at close time
        assert inner_ev.name == "RHS" and outer_ev.name == "STEP"
        assert inner_ev.parent == outer_ev.id
        assert outer_ev.parent is None
        assert inner_ev.duration == pytest.approx(2.0)
        assert outer_ev.duration == pytest.approx(3.5)
        assert outer_ev.attrs == {"steps": 3}

    def test_lamport_recv_jumps_past_sender(self):
        log = TraceLog(clock=FakeClock())
        # sender rank 0 builds up a large clock
        for _ in range(10):
            log.end_span(log.begin_span("W", rank=0))
        ctx = log.record_send(0, 1, 3, 64)
        recv = log.record_recv(1, 0, 3, 64, ctx=ctx)
        send = next(e for e in log.events if e.kind == "send")
        assert recv.logical > send.logical
        assert recv.parent == send.id

    def test_recv_without_context_has_no_parent(self):
        log = TraceLog(clock=FakeClock())
        ev = log.record_recv(1, 0, 3, 64)
        assert ev.parent is None and ev.logical == 1

    def test_per_rank_sequence_and_clock_monotone(self):
        log = TraceLog(clock=FakeClock())
        for _ in range(4):
            log.record_send(2, 0, 1, 8)
        evs = [e for e in log.events if e.rank == 2]
        assert [e.seq for e in evs] == [0, 1, 2, 3]
        assert [e.logical for e in evs] == sorted(e.logical for e in evs)

    def test_event_dict_roundtrip(self):
        log = TraceLog(clock=FakeClock())
        sid = log.begin_span("X", rank=3)
        ev = log.end_span(sid, cells=7)
        back = TraceEvent.from_dict(json.loads(json.dumps(ev.as_dict())))
        assert back == ev

    def test_snapshot_is_json_serializable(self):
        log = TraceLog(clock=FakeClock())
        ctx = log.record_send(0, 1, 5, 16)
        log.record_recv(1, 0, 5, 16, ctx=ctx)
        snap = json.loads(json.dumps(log.snapshot()))
        assert snap["rank"] == DRIVER_RANK
        assert len(snap["events"]) == 2

    def test_reset_refuses_open_spans(self):
        log = TraceLog(clock=FakeClock())
        log.begin_span("OPEN")
        with pytest.raises(RuntimeError, match="OPEN"):
            log.reset()

    def test_reset_clears_everything(self):
        log = TraceLog(clock=FakeClock())
        log.end_span(log.begin_span("A"))
        log.reset()
        assert log.events == [] and log.active == 0
        # ids restart: fresh ground truth after reset
        sid = log.begin_span("B")
        assert sid == 1


class TestResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACING", "1")
        assert resolve_tracing(False) is False
        monkeypatch.delenv("REPRO_TRACING")
        assert resolve_tracing(True) is True

    def test_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACING", raising=False)
        assert resolve_tracing() is False
        for raw in ("1", "on", "TRUE", "yes"):
            monkeypatch.setenv("REPRO_TRACING", raw)
            assert resolve_tracing() is True
        monkeypatch.setenv("REPRO_TRACING", "0")
        assert resolve_tracing() is False

    def test_classify_tag(self):
        assert classify_tag(0) == "halo"
        assert classify_tag(42) == "halo"
        assert classify_tag(700) == "chemlb.ship"
        assert classify_tag(9101) == "chemlb.ship"
        assert classify_tag(9102) == "profile.fusion"
        assert classify_tag(50700) == "chemlb.reply"
        assert classify_tag(200) == "message"


class TestTelemetryIntegration:
    def test_tracing_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACING", raising=False)
        tel = Telemetry()
        assert tel.tracing is False and tel.tracelog is None
        assert NULL_TELEMETRY.tracing is False
        assert NULL_TELEMETRY.tracelog is None

    def test_spans_record_trace_events(self):
        tel = Telemetry(tracing=True)
        with tel.span("STEP"):
            with tel.span("RHS"):
                pass
        names = [e.name for e in tel.tracelog.events]
        assert names == ["RHS", "STEP"]
        rhs, step = tel.tracelog.events
        assert rhs.parent == step.id
        # aggregate span statistics are unaffected by tracing
        assert tel.tracer.stats["STEP"].count == 1

    def test_enable_tracing_idempotent_and_late(self):
        tel = Telemetry()
        log = tel.enable_tracing(rank=2)
        assert tel.enable_tracing() is log
        assert log.rank == 2
        with tel.span("LATE"):
            pass
        assert [e.name for e in log.events] == ["LATE"]

    def test_snapshot_carries_trace_events(self):
        tel = Telemetry(tracing=True)
        with tel.span("A"):
            pass
        snap = tel.snapshot()
        assert len(snap["trace"]["events"]) == 1

    def test_reset_clears_tracelog(self):
        tel = Telemetry(tracing=True)
        with tel.span("A"):
            pass
        tel.reset()
        assert tel.tracelog.events == []


# ---------------------------------------------------------------------------
# transport piggyback (in-process message plane — shared by the
# multiprocessing backend, which inherits the driver-owned mailboxes)
# ---------------------------------------------------------------------------
class TestTransportPiggyback:
    def _world(self, size=2, telemetry=None, injector=None):
        from repro.parallel.comm import InProcessTransport

        return InProcessTransport(size, fault_injector=injector,
                                  telemetry=telemetry)

    def test_send_recv_records_matched_pair(self):
        tel = Telemetry(tracing=True)
        world = self._world(telemetry=tel)
        payload = np.arange(6, dtype=np.float64)
        world.comm(0).Send(payload, dest=1, tag=7)
        out = world.comm(1).Recv(source=0, tag=7)
        assert np.array_equal(out, payload)  # payload untouched
        send, recv = tel.tracelog.events
        assert (send.kind, recv.kind) == ("send", "recv")
        assert recv.parent == send.id
        assert recv.logical > send.logical
        assert send.attrs["bytes"] == payload.nbytes
        assert send.name == recv.name == "halo"

    def test_tracing_enabled_after_construction(self):
        tel = Telemetry()
        world = self._world(telemetry=tel)
        world.comm(0).Send(np.zeros(2), dest=1, tag=0)
        world.comm(1).Recv(source=0, tag=0)
        assert tel.tracelog is None
        tel.enable_tracing()  # transports look the log up per call
        world.comm(0).Send(np.zeros(2), dest=1, tag=0)
        world.comm(1).Recv(source=0, tag=0)
        assert [e.kind for e in tel.tracelog.events] == ["send", "recv"]

    def test_tracing_off_is_invisible(self):
        tel = Telemetry()
        world = self._world(telemetry=tel)
        world.comm(0).Send(np.ones(3), dest=1, tag=1)
        assert np.array_equal(world.comm(1).Recv(source=0, tag=1), np.ones(3))
        assert not world._trace_ctx

    def test_delayed_message_keeps_context(self):
        from repro.resilience.faults import FaultInjector

        inj = FaultInjector()
        inj.add("mpi.send", mode="delay", probability=1.0, count=1)
        tel = Telemetry(tracing=True)
        world = self._world(telemetry=tel, injector=inj)
        world.comm(0).Send(np.arange(4.0), dest=1, tag=2)
        assert world.pending_messages() == 0  # parked, not delivered
        assert world.deliver_delayed() == 1
        world.comm(1).Recv(source=0, tag=2)
        send, recv = tel.tracelog.events
        assert recv.parent == send.id

    def test_dropped_message_not_traced(self):
        from repro.resilience.faults import FaultInjector

        inj = FaultInjector()
        inj.add("mpi.send", mode="drop", probability=1.0, count=1)
        tel = Telemetry(tracing=True)
        world = self._world(telemetry=tel, injector=inj)
        world.comm(0).Send(np.arange(4.0), dest=1, tag=2)
        assert world.dropped == 1
        assert tel.tracelog.events == []  # mirrors the message log

    def test_reset_channels_clears_sidecar(self):
        tel = Telemetry(tracing=True)
        world = self._world(telemetry=tel)
        world.comm(0).Send(np.zeros(2), dest=1, tag=0)
        world.reset_channels()
        assert not world._trace_ctx
        # a fresh exchange still pairs correctly (no stale contexts)
        world.comm(0).Send(np.ones(2), dest=1, tag=0)
        world.comm(1).Recv(source=0, tag=0)
        assert tel.tracelog.events[-1].parent == tel.tracelog.events[-2].id

    def test_gather_bytes_produces_flows(self):
        tel = Telemetry(tracing=True)
        world = self._world(size=3, telemetry=tel)
        out = world.gather_bytes([b"a", b"bb", b"ccc"], root=0)
        assert out == [b"a", b"bb", b"ccc"]
        recvs = [e for e in tel.tracelog.events if e.kind == "recv"]
        assert len(recvs) == 2
        assert all(r.parent is not None for r in recvs)

    def test_collectives_work_under_tracing(self):
        tel = Telemetry(tracing=True)
        world = self._world(size=2, telemetry=tel)

        def phase(comm):
            return comm.allreduce_sum(comm.Get_rank() + 1)

        # deferred collective: the final contributor reads the reduction
        results = world.run_phases(phase)
        assert results == [None, 3]


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------
class TestStitch:
    def test_cross_log_recv_parent_resolution(self):
        # SPMD shape: the send lives in the sender's log, the receive in
        # the receiver's; ids collide across logs
        a, b = TraceLog(clock=FakeClock(), rank=0), TraceLog(
            clock=FakeClock(), rank=1)
        ctx = a.record_send(0, 1, 4, 32)
        b.record_recv(1, 0, 4, 32, ctx=ctx)
        b.record_send(1, 0, 9, 8)  # id 2 in log b — a collision candidate
        events = timeline.stitch([a.snapshot(), b.snapshot()])
        ids = [e["id"] for e in events]
        assert len(set(ids)) == len(ids)  # globally unique after stitch
        send = next(e for e in events if e["kind"] == "send"
                    and e["rank"] == 0)
        recv = next(e for e in events if e["kind"] == "recv")
        assert recv["parent"] == send["id"]

    def test_causal_sort_send_before_recv(self):
        log = TraceLog(clock=FakeClock())
        for i in range(5):
            ctx = log.record_send(0, 1, i, 8)
            log.record_recv(1, 0, i, 8, ctx=ctx)
        events = timeline.stitch([log.snapshot()])
        pos = {e["id"]: i for i, e in enumerate(events)}
        for e in events:
            if e["kind"] == "recv":
                assert pos[e["parent"]] < pos[e["id"]]

    def test_span_parents_stay_intra_log(self):
        log = TraceLog(clock=FakeClock())
        outer = log.begin_span("OUTER")
        log.end_span(log.begin_span("INNER"))
        log.end_span(outer)
        events = timeline.stitch([log.snapshot()])
        by_name = {e["name"]: e for e in events}
        assert by_name["INNER"]["parent"] == by_name["OUTER"]["id"]

    def test_accepts_live_logs_and_event_lists(self):
        log = TraceLog(clock=FakeClock())
        log.end_span(log.begin_span("A"))
        assert timeline.stitch([log])[0]["name"] == "A"
        assert timeline.stitch([log.snapshot()["events"]])[0]["name"] == "A"


# ---------------------------------------------------------------------------
# Chrome-trace export + schema validation
# ---------------------------------------------------------------------------
class TestChromeExport:
    def _sample_events(self):
        clock = FakeClock(10.0)
        log = TraceLog(clock=clock)
        sid = log.begin_span("STEP", rank=0)
        ctx = log.record_send(0, 1, 3, 128)
        clock.advance(0.25)
        log.end_span(sid)
        log.record_recv(1, 0, 3, 128, ctx=ctx)
        return timeline.stitch([log.snapshot()])

    def test_export_validates_and_binds_flows(self):
        trace = timeline.export_chrome_trace(self._sample_events(),
                                             title="unit")
        stats = timeline.validate_chrome_trace(trace)
        assert stats["by_phase"]["X"] == 1
        assert stats["flows"] == 1
        assert trace["otherData"]["title"] == "unit"
        starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["pid"] != finishes[0]["pid"]  # crosses ranks

    def test_pid_mapping_one_per_rank(self):
        log = TraceLog(clock=FakeClock())  # driver lane
        log.end_span(log.begin_span("D"))
        log.end_span(log.begin_span("R", rank=3))
        trace = timeline.export_chrome_trace(timeline.stitch([log]))
        meta = {e["args"]["name"]: e["pid"]
                for e in trace["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta == {"driver": 0, "rank 3": 4}

    def test_timestamps_relative_microseconds(self):
        trace = timeline.export_chrome_trace(self._sample_events())
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["ts"] == pytest.approx(0.0)
        assert slices[0]["dur"] == pytest.approx(0.25e6)

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            timeline.validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="unknown phase"):
            timeline.validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
        with pytest.raises(ValueError, match="missing field"):
            timeline.validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 0,
                                  "tid": 0, "ts": 0.0}]})
        with pytest.raises(ValueError, match="no matching start"):
            timeline.validate_chrome_trace(
                {"traceEvents": [{"ph": "f", "bp": "e", "name": "m",
                                  "pid": 0, "tid": 0, "ts": 0.0, "id": 9}]})


# ---------------------------------------------------------------------------
# breakdown + critical path
# ---------------------------------------------------------------------------
class TestAnalysis:
    def _two_rank_chain(self):
        """rank 0: 1 s of compute, then ships; rank 1: waits, then 2 s
        of chemistry. Critical path = 3 s through the message edge."""
        clock = FakeClock()
        log = TraceLog(clock=clock)
        s0 = log.begin_span("INTEGRATE", rank=0)
        clock.advance(1.0)
        log.end_span(s0)
        ctx = log.record_send(0, 1, 700, 64)  # chemlb shipment
        log.record_recv(1, 0, 700, 64, ctx=ctx)
        s1 = log.begin_span("CHEMISTRY_CELLS", rank=1)
        clock.advance(2.0)
        log.end_span(s1, cells=10)
        # a fat span on rank 2 that is causally unrelated but shorter
        s2 = log.begin_span("INTEGRATE", rank=2)
        clock.advance(1.5)
        log.end_span(s2)
        return timeline.stitch([log.snapshot()])

    def test_breakdown_exclusive_per_rank(self):
        events = self._two_rank_chain()
        bd = timeline.breakdown(events)
        assert bd["ranks"][0]["compute"] == pytest.approx(1.0)
        assert bd["ranks"][1]["chemistry"] == pytest.approx(2.0)
        assert bd["total"]["compute"] == pytest.approx(2.5)

    def test_breakdown_subtracts_children(self):
        clock = FakeClock()
        log = TraceLog(clock=clock)
        outer = log.begin_span("STEP", rank=0)
        clock.advance(0.5)
        inner = log.begin_span("HALO_EXCHANGE", rank=0)
        clock.advance(1.0)
        log.end_span(inner)
        log.end_span(outer)
        bd = timeline.breakdown(timeline.stitch([log]))
        assert bd["ranks"][0]["compute"] == pytest.approx(0.5)
        assert bd["ranks"][0]["halo"] == pytest.approx(1.0)

    def test_critical_path_follows_message_edge(self):
        cp = timeline.critical_path(self._two_rank_chain())
        assert cp["seconds"] == pytest.approx(3.0)
        span_steps = [s for s in cp["steps"] if s["kind"] == "span"]
        assert [s["name"] for s in span_steps] == ["INTEGRATE",
                                                   "CHEMISTRY_CELLS"]
        assert cp["by_category"] == {
            "compute": pytest.approx(1.0), "chemistry": pytest.approx(2.0)}

    def test_critical_path_empty(self):
        assert timeline.critical_path([]) == {
            "seconds": 0.0, "steps": [], "by_category": {}}

    def test_classify_kernel(self):
        assert timeline.classify_kernel("CHEMLB") == "chemlb.ship"
        assert timeline.classify_kernel("CHEMISTRY_CELLS") == "chemistry"
        assert timeline.classify_kernel("CHEMISTRY_IMPLICIT") == "chemistry"
        assert timeline.classify_kernel("HALO_EXCHANGE") == "halo"
        assert timeline.classify_kernel("EXEC:step_block") == "exec.wait"
        assert timeline.classify_kernel("INTEGRATE") == "compute"

    def test_reconcile_chemistry_shares(self):
        events = self._two_rank_chain()
        # trace says rank1 does all chemistry; reference agrees
        rec = timeline.reconcile_chemistry(events, [0.0, 4.0])
        assert rec["max_share_deviation"] == pytest.approx(0.0)
        # reference disagrees by half
        rec = timeline.reconcile_chemistry(events, [2.0, 2.0])
        assert rec["max_share_deviation"] == pytest.approx(0.5)

    def test_report_renders(self):
        text = timeline.critical_path_report(self._two_rank_chain(),
                                             rank_seconds=[0.0, 2.0])
        assert "critical path" in text
        assert "chemistry share" in text
        assert "rank 1" in text


# ---------------------------------------------------------------------------
# metrics endpoint
# ---------------------------------------------------------------------------
class TestPrometheusText:
    def test_names_sanitized_and_prefixed(self):
        assert metric_name("transport.bytes") == "repro_transport_bytes"
        assert metric_name("repro_x") == "repro_x"

    def test_counters_gauges_histograms(self):
        tel = Telemetry()
        tel.counter("io.writes").inc(3)
        tel.gauge("solver.dt").set(1.5e-8)
        tel.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        text = prometheus_text(tel.metrics.snapshot())
        samples = parse_prometheus_text(text)
        assert samples["repro_io_writes"] == 3
        assert samples["repro_solver_dt"] == pytest.approx(1.5e-8)
        assert samples['repro_h_bucket{le="1"}'] == 0
        assert samples['repro_h_bucket{le="2"}'] == 1
        assert samples['repro_h_bucket{le="+Inf"}'] == 1
        assert samples["repro_h_count"] == 1
        assert "# TYPE repro_io_writes counter" in text

    def test_empty_snapshot(self):
        assert prometheus_text(
            {"counters": {}, "gauges": {}, "histograms": {}}) == ""


class TestMetricsEndpoint:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()

    def test_serves_metrics_and_snapshot(self):
        tel = Telemetry()
        tel.counter("steps").inc(7)
        with MetricsEndpoint(tel) as ep:
            assert ep.running and ep.port > 0
            status, body = self._get(f"{ep.url}/metrics")
            assert status == 200
            assert parse_prometheus_text(body)["repro_steps"] == 7
            # live values: scrape again after another increment
            tel.counter("steps").inc(1)
            _, body = self._get(f"{ep.url}/metrics")
            assert parse_prometheus_text(body)["repro_steps"] == 8
            _, snap = self._get(f"{ep.url}/snapshot.json")
            assert json.loads(snap)["metrics"]["counters"]["steps"] == 8
            status, body = self._get(f"{ep.url}/healthz")
            assert (status, body) == (200, "ok\n")
        assert not ep.running

    def test_unknown_path_404(self):
        with MetricsEndpoint(Telemetry()) as ep:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(f"{ep.url}/nope")
            assert err.value.code == 404

    def test_dashboard_route_and_publish(self):
        from repro.workflow.dashboard import Dashboard

        tel = Telemetry()
        tel.gauge("solver.dt").set(2e-8)
        dash = Dashboard()
        with MetricsEndpoint(tel, dashboard=dash) as ep:
            ep.publish("jet-run")
            status, body = self._get(f"{ep.url}/dashboard")
            assert status == 200
            assert "jet-run" in body and "solver.dt" in body
        assert dash.metrics["jet-run"]["gauges"]["solver.dt"] == 2e-8

    def test_dashboard_route_404_without_dashboard(self):
        with MetricsEndpoint(Telemetry()) as ep:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(f"{ep.url}/dashboard")
            assert err.value.code == 404

    def test_trace_snapshot_over_http(self):
        tel = Telemetry(tracing=True)
        with tel.span("STEP"):
            pass
        with MetricsEndpoint(tel) as ep:
            _, snap = self._get(f"{ep.url}/snapshot.json")
        events = json.loads(snap)["trace"]["events"]
        assert [e["name"] for e in events] == ["STEP"]


# ---------------------------------------------------------------------------
# fixed_substeps plumbing (satellite: SolverConfig / env -> integrator)
# ---------------------------------------------------------------------------
class TestFixedSubstepsPlumbing:
    def test_resolver_explicit_env_default(self, monkeypatch):
        from repro.chemistry.implicit import resolve_fixed_substeps

        monkeypatch.delenv("REPRO_CHEM_FIXED_SUBSTEPS", raising=False)
        assert resolve_fixed_substeps() is None
        assert resolve_fixed_substeps(4) == 4
        monkeypatch.setenv("REPRO_CHEM_FIXED_SUBSTEPS", "6")
        assert resolve_fixed_substeps() == 6
        assert resolve_fixed_substeps(2) == 2  # explicit wins
        with pytest.raises(ValueError):
            resolve_fixed_substeps(0)
        monkeypatch.setenv("REPRO_CHEM_FIXED_SUBSTEPS", "many")
        with pytest.raises(ValueError):
            resolve_fixed_substeps()

    def test_config_validate_rejects_bad_count(self):
        from repro.core.config import SolverConfig, periodic_boundaries
        from repro.core.grid import Grid

        grid = Grid((8, 8), (1.0, 1.0), periodic=(True, True))
        cfg = SolverConfig(boundaries=periodic_boundaries(2), dt=1e-8,
                           fixed_substeps=0)
        with pytest.raises(ValueError):
            cfg.validate(grid)

    def _strang_solver(self, h2_mech, **cfg_kwargs):
        from repro.core.config import SolverConfig, periodic_boundaries
        from repro.core.grid import Grid
        from repro.core.solver import S3DSolver
        from repro.core.state import State
        from repro.util.constants import P_ATM

        grid = Grid((12, 12), (1e-3, 1e-3), periodic=(True, True))
        n = h2_mech.n_species
        Y = np.full((n,) + grid.shape, 1.0 / n)
        T = np.full(grid.shape, 1100.0)
        rho = h2_mech.density(P_ATM, T, Y)
        state = State.from_primitive(h2_mech, grid, rho, [0.0, 0.0], T, Y)
        cfg_kwargs.setdefault("chemistry_mode", "strang")
        cfg = SolverConfig(boundaries=periodic_boundaries(2), dt=1e-9,
                           **cfg_kwargs)
        return S3DSolver(state, cfg, reacting=True)

    def test_config_plumbs_to_integrator(self, h2_mech):
        solver = self._strang_solver(h2_mech, fixed_substeps=3)
        assert solver._chem.fixed_substeps == 3

    def test_env_plumbs_to_integrator(self, h2_mech, monkeypatch):
        monkeypatch.setenv("REPRO_CHEM_FIXED_SUBSTEPS", "5")
        solver = self._strang_solver(h2_mech)
        assert solver._chem.fixed_substeps == 5

    def test_explicit_mode_rejects_fixed_substeps(self, h2_mech):
        with pytest.raises(ValueError, match="strang"):
            self._strang_solver(h2_mech, chemistry_mode="explicit",
                                fixed_substeps=2)

    def test_parallel_solver_rejects_outside_strang(self, h2_mech):
        from repro.analysis.golden import lifted_jet_parallel_solver

        with pytest.raises(ValueError, match="strang"):
            lifted_jet_parallel_solver("inprocess", fixed_substeps=2)


def _strang_solver_cfg_note():
    """(The lifted-jet parallel scenario runs explicit chemistry, so the
    rejection above exercises the parallel solver's guard.)"""


# ---------------------------------------------------------------------------
# end-to-end: the pinned parallel scenario under tracing
# ---------------------------------------------------------------------------
def _run_lifted_jet(transport: str, tracing: bool, monkeypatch, steps=None):
    from repro.analysis.golden import (
        LIFTED_JET_PARALLEL_DT,
        LIFTED_JET_PARALLEL_STEPS,
        lifted_jet_parallel_solver,
    )

    monkeypatch.delenv("REPRO_TRACING", raising=False)
    solver = lifted_jet_parallel_solver(transport, tracing=tracing)
    try:
        for _ in range(steps or LIFTED_JET_PARALLEL_STEPS):
            solver.step(LIFTED_JET_PARALLEL_DT)
        u = np.array(solver.state.u, copy=True)
        events = solver.trace_events() if tracing else []
        trace = solver.export_timeline() if tracing else None
        rank_seconds = list(solver.chemlb.rank_seconds)
    finally:
        solver.close()
    return u, events, trace, rank_seconds


@pytest.mark.slow
class TestLiftedJetTracing:
    def test_tracing_is_bitwise_invisible(self, monkeypatch):
        u_off, _, _, _ = _run_lifted_jet("inprocess", False, monkeypatch)
        u_on, _, _, _ = _run_lifted_jet("inprocess", True, monkeypatch)
        assert np.array_equal(u_off, u_on), (
            "enabling tracing perturbed the solution"
        )

    @pytest.mark.parametrize("transport", ["inprocess", "multiprocessing"])
    def test_stitched_perfetto_timeline(self, transport, monkeypatch):
        from repro.parallel.comm import transport_unavailable_reason

        reason = transport_unavailable_reason(transport)
        if reason:
            pytest.skip(reason)
        _, events, trace, rank_seconds = _run_lifted_jet(
            transport, True, monkeypatch)
        # one stitched stream covering driver + all 4 ranks
        assert {e["rank"] for e in events} == {-1, 0, 1, 2, 3}
        stats = timeline.validate_chrome_trace(trace)
        assert stats["flows"] > 0
        assert set(stats["pids"]) == {0, 1, 2, 3, 4}
        # chemlb shipment flow arrows connect sender and receiver pids
        by_id = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "s" and ev["name"] == "chemlb.ship":
                by_id.setdefault(ev["id"], {})["s"] = ev["pid"]
            elif ev["ph"] == "f" and ev["name"] == "chemlb.ship":
                by_id.setdefault(ev["id"], {})["f"] = ev["pid"]
        crossings = [v for v in by_id.values()
                     if "s" in v and "f" in v and v["s"] != v["f"]]
        assert crossings, "no chemlb shipment flow arrows cross ranks"
        # trace-derived chemistry shares vs the balancer's measurement
        rec = timeline.reconcile_chemistry(events, rank_seconds)
        assert sum(rec["trace_seconds"]) > 0
        assert rec["max_share_deviation"] < 0.05, (
            f"trace chemistry shares deviate from rank_seconds by "
            f"{rec['max_share_deviation']:.3f}"
        )

    def test_export_writes_loadable_json(self, tmp_path, monkeypatch):
        from repro.analysis.golden import (
            LIFTED_JET_PARALLEL_DT,
            lifted_jet_parallel_solver,
        )

        monkeypatch.delenv("REPRO_TRACING", raising=False)
        solver = lifted_jet_parallel_solver("inprocess", tracing=True)
        try:
            solver.step(LIFTED_JET_PARALLEL_DT)
            path = tmp_path / "timeline.json"
            solver.export_timeline(path)
        finally:
            solver.close()
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
        timeline.validate_chrome_trace(trace)

    def test_rank_telemetry_workers_join_the_timeline(self, monkeypatch):
        """With per-rank telemetry the workers' own kernel spans stitch
        into the global timeline on their rank lanes."""
        from repro.analysis.golden import (
            LIFTED_JET_PARALLEL_DT,
            lifted_jet_parallel_solver,
        )

        monkeypatch.delenv("REPRO_TRACING", raising=False)
        solver = lifted_jet_parallel_solver("inprocess", tracing=True,
                                            rank_telemetry=True)
        try:
            solver.step(LIFTED_JET_PARALLEL_DT)
            events = solver.trace_events()
        finally:
            solver.close()
        worker_spans = [e for e in events
                        if e["kind"] == "span" and e["rank"] >= 0]
        assert worker_spans, "no worker-side spans reached the timeline"
