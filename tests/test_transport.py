"""Tests for molecular transport: collision integrals, mixture rules."""

import numpy as np
import pytest

from repro.transport import (
    ConstantLewisTransport,
    MixtureAveragedTransport,
    PowerLawTransport,
    omega11,
    omega22,
    reduced_temperature,
)
from repro.util.constants import P_ATM


class TestCollisionIntegrals:
    def test_omega22_reference_point(self):
        # tabulated Omega(2,2)* at T* = 1.0 is ~1.587 (Hirschfelder)
        assert omega22(1.0) == pytest.approx(1.587, rel=0.01)

    def test_omega11_reference_point(self):
        # tabulated Omega(1,1)* at T* = 1.0 is ~1.439
        assert omega11(1.0) == pytest.approx(1.439, rel=0.01)

    def test_decreasing_with_temperature(self):
        t = np.array([0.5, 1.0, 5.0, 50.0])
        assert np.all(np.diff(omega22(t)) < 0)
        assert np.all(np.diff(omega11(t)) < 0)

    def test_approach_unity_at_high_t(self):
        assert 0.5 < omega22(100.0) < 1.0
        assert 0.5 < omega11(100.0) < 1.0

    def test_reduced_temperature(self):
        assert reduced_temperature(300.0, 100.0) == pytest.approx(3.0)


class TestMixtureAveraged:
    def test_air_viscosity(self, air_mech, air_y):
        tr = MixtureAveragedTransport(air_mech)
        mu = tr.mixture_viscosity(np.array(300.0), air_mech.mass_to_mole(air_y))
        assert float(mu) == pytest.approx(1.85e-5, rel=0.03)

    def test_air_conductivity(self, air_mech, air_y):
        tr = MixtureAveragedTransport(air_mech)
        lam = tr.mixture_conductivity(np.array(300.0), air_mech.mass_to_mole(air_y))
        assert float(lam) == pytest.approx(0.026, rel=0.05)

    def test_air_prandtl_number(self, air_mech, air_y):
        tr = MixtureAveragedTransport(air_mech)
        props = tr.evaluate(np.array(300.0), P_ATM, air_y)
        cp = air_mech.cp_mass(np.array(300.0), air_y)
        pr = float(props.viscosity * cp / props.conductivity)
        assert pr == pytest.approx(0.71, rel=0.1)

    def test_viscosity_increases_with_temperature(self, air_mech, air_y):
        tr = MixtureAveragedTransport(air_mech)
        T = np.array([300.0, 600.0, 1200.0])
        X = air_mech.mass_to_mole(air_y)[:, None] * np.ones((1, 3))
        mu = tr.mixture_viscosity(T, X)
        assert np.all(np.diff(mu) > 0)

    def test_binary_diffusion_symmetric(self, h2_mech):
        tr = MixtureAveragedTransport(h2_mech)
        d = tr.binary_diffusion(np.array(500.0), P_ATM)
        np.testing.assert_allclose(d, np.swapaxes(d, 0, 1), rtol=1e-12)

    def test_diffusion_scales_inverse_pressure(self, h2_mech):
        tr = MixtureAveragedTransport(h2_mech)
        d1 = tr.binary_diffusion(np.array(500.0), P_ATM)
        d2 = tr.binary_diffusion(np.array(500.0), 2 * P_ATM)
        np.testing.assert_allclose(d1, 2 * d2, rtol=1e-12)

    def test_h2_diffuses_fastest(self, h2_mech, h2_air_stoich):
        """Light H2 has the largest mixture diffusivity (Lewis < 1)."""
        tr = MixtureAveragedTransport(h2_mech)
        props = tr.evaluate(np.array(500.0), P_ATM, h2_air_stoich)
        d = props.diffusivities
        heavy = [h2_mech.index(n) for n in ("O2", "N2", "H2O2")]
        assert all(d[h2_mech.index("H2")] > d[i] for i in heavy)
        assert d[h2_mech.index("H")] > d[h2_mech.index("H2O")]

    def test_o2_n2_binary_diffusion_magnitude(self, air_mech):
        tr = MixtureAveragedTransport(air_mech)
        d = tr.binary_diffusion(np.array(300.0), P_ATM)
        # literature: D(O2-N2, 300 K, 1 atm) ~ 0.21 cm^2/s
        assert float(d[0, 1]) == pytest.approx(2.1e-5, rel=0.15)

    def test_positive_everywhere(self, h2_mech):
        rng = np.random.default_rng(0)
        Y = rng.random((h2_mech.n_species, 8))
        Y /= Y.sum(axis=0)
        T = np.linspace(300.0, 2500.0, 8)
        tr = MixtureAveragedTransport(h2_mech)
        props = tr.evaluate(T, P_ATM, Y)
        assert np.all(props.viscosity > 0)
        assert np.all(props.conductivity > 0)
        assert np.all(props.diffusivities > 0)

    def test_soret_ratios_only_light_species(self, h2_mech, h2_air_stoich):
        tr = MixtureAveragedTransport(h2_mech, soret=True)
        props = tr.evaluate(np.array(1000.0), P_ATM, h2_air_stoich)
        theta = props.thermal_diffusion_ratios
        assert theta[h2_mech.index("H2")] != 0.0
        assert theta[h2_mech.index("N2")] == 0.0

    def test_missing_transport_data_raises(self, h2_mech):
        from repro.chemistry.mechanism import Mechanism
        from repro.chemistry.mechanisms.builders import make_species

        sp = make_species("O2")
        sp.transport = None
        with pytest.raises(ValueError, match="missing transport"):
            MixtureAveragedTransport(Mechanism([sp, make_species("N2")]))

    def test_shape_handling(self, air_mech, air_y):
        tr = MixtureAveragedTransport(air_mech)
        T = np.full((4, 3), 400.0)
        Y = air_y[:, None, None] * np.ones((1, 4, 3))
        props = tr.evaluate(T, P_ATM, Y)
        assert props.viscosity.shape == (4, 3)
        assert props.diffusivities.shape == (2, 4, 3)


class TestSimpleTransport:
    def test_power_law_exponent(self, air_mech):
        tr = PowerLawTransport(air_mech, mu_ref=1.8e-5, t_ref=300.0, exponent=0.7)
        Y = air_mech.mass_fractions_from({"O2": 0.233, "N2": 0.767})
        p1 = tr.evaluate(np.array(300.0), P_ATM, Y)
        p2 = tr.evaluate(np.array(600.0), P_ATM, Y)
        assert float(p2.viscosity / p1.viscosity) == pytest.approx(2.0**0.7, rel=1e-10)

    def test_power_law_unity_lewis(self, air_mech, air_y):
        tr = PowerLawTransport(air_mech, prandtl=0.72)
        props = tr.evaluate(np.array(500.0), P_ATM, air_y)
        rho = air_mech.density(P_ATM, np.array(500.0), air_y)
        cp = air_mech.cp_mass(np.array(500.0), air_y)
        alpha = props.conductivity / (rho * cp)
        np.testing.assert_allclose(props.diffusivities, alpha, rtol=1e-12)

    def test_constant_lewis_dict(self, h2_mech, h2_air_stoich):
        tr = ConstantLewisTransport(h2_mech, lewis={"H2": 0.3, "H": 0.18})
        props = tr.evaluate(np.array(800.0), P_ATM, h2_air_stoich)
        d = props.diffusivities
        assert d[h2_mech.index("H2")] == pytest.approx(
            d[h2_mech.index("N2")] / 0.3, rel=1e-10
        )

    def test_constant_lewis_bad_shape(self, h2_mech):
        with pytest.raises(ValueError, match="lewis"):
            ConstantLewisTransport(h2_mech, lewis=np.ones(3))

    def test_prandtl_consistency(self, air_mech, air_y):
        tr = ConstantLewisTransport(air_mech, prandtl=0.7)
        props = tr.evaluate(np.array(400.0), P_ATM, air_y)
        cp = air_mech.cp_mass(np.array(400.0), air_y)
        assert float(props.viscosity * cp / props.conductivity) == pytest.approx(0.7)


class TestWorkspaceEvaluate:
    """The arena-backed transport evaluation is bitwise-equal to plain."""

    @pytest.mark.parametrize("soret", [False, True])
    def test_bitwise_vs_plain(self, h2_mech, soret):
        from repro.core.workspace import Workspace

        tr = MixtureAveragedTransport(h2_mech, soret=soret)
        rng = np.random.default_rng(11)
        S = (6, 5)
        T = 400.0 + 1400.0 * rng.random(S)
        p = P_ATM * (1.0 + 0.2 * (rng.random(S) - 0.5))
        Y = rng.random((h2_mech.n_species,) + S) + 0.05
        Y /= Y.sum(axis=0)
        plain = tr.evaluate(T, p, Y)
        fast = tr.evaluate(T, p, Y, workspace=Workspace())
        assert np.array_equal(plain.viscosity, fast.viscosity)
        assert np.array_equal(plain.conductivity, fast.conductivity)
        assert np.array_equal(plain.diffusivities, fast.diffusivities)
        if soret:
            assert np.array_equal(plain.thermal_diffusion_ratios,
                                  fast.thermal_diffusion_ratios)
        else:
            assert fast.thermal_diffusion_ratios is None

    def test_warm_rerun_allocates_no_new_buffers(self, h2_mech):
        from repro.core.workspace import Workspace

        tr = MixtureAveragedTransport(h2_mech)
        rng = np.random.default_rng(12)
        S = (8,)
        T = 400.0 + 1400.0 * rng.random(S)
        Y = rng.random((h2_mech.n_species,) + S) + 0.05
        Y /= Y.sum(axis=0)
        ws = Workspace()
        tr.evaluate(T, P_ATM, Y, workspace=ws)
        n = len(ws)
        tr.evaluate(T, 1.1 * P_ATM, Y, workspace=ws)
        assert len(ws) == n
