"""Cross-transport conformance suite: the contract every backend passes.

One shared battery — point-to-point ordering, tag matching, probe,
collectives, gather_bytes, delayed delivery, rank failure, fault
injection, message-log accounting, and the execution plane — runs
against every registered transport backend. A new backend is done when
this file passes for it; an unavailable backend (mpi4py without the
package) skips with its reason, which is the CI transport lane's
skip-with-reason output.

Also here:
* hypothesis property tests — random message schedules produce
  identical :class:`~repro.parallel.comm.MessageLog` accounting and
  identical payloads across the in-process and multiprocessing
  backends,
* the fault-injection matrix — drop/corrupt/delay/rank-failure
  schedules replay deterministically (seeds 1, 7, 42) and raise the
  same typed exceptions through the multiprocessing control plane.
"""

import os
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.comm import (
    TRANSPORTS,
    InProcessTransport,
    TransportUnavailableError,
    available_transports,
    create_transport,
    resolve_transport_name,
    transport_unavailable_reason,
)
from repro.parallel.programs import EchoProgram, make_echo, make_failing
from repro.resilience.errors import MessageNotFoundError, RankFailedError
from repro.resilience.faults import FaultInjector

pytestmark = pytest.mark.transport


@pytest.fixture(params=TRANSPORTS)
def make_world(request):
    """Factory building worlds on one backend; skips when unavailable."""
    name = request.param
    reason = transport_unavailable_reason(name)
    if reason is not None:
        pytest.skip(f"{name}: {reason}")
    made = []

    def make(size, fault_injector=None):
        try:
            t = create_transport(name, size=size,
                                 fault_injector=fault_injector)
        except TransportUnavailableError as exc:
            pytest.skip(f"{name}: {exc}")
        made.append(t)
        return t

    make.transport_name = name
    yield make
    for t in made:
        t.close()


class TestPointToPoint:
    def test_send_recv_roundtrip(self, make_world):
        w = make_world(2)
        w.comm(0).Send(np.arange(4.0), dest=1, tag=7)
        np.testing.assert_array_equal(
            w.comm(1).Recv(source=0, tag=7), np.arange(4.0))

    def test_fifo_per_channel(self, make_world):
        w = make_world(2)
        for v in (1.0, 2.0, 3.0):
            w.comm(0).Send(np.array([v]), dest=1, tag=0)
        got = [w.comm(1).Recv(source=0, tag=0)[0] for _ in range(3)]
        assert got == [1.0, 2.0, 3.0]

    def test_tag_matching(self, make_world):
        w = make_world(2)
        w.comm(0).Send(np.array([10.0]), dest=1, tag=5)
        w.comm(0).Send(np.array([20.0]), dest=1, tag=9)
        # tags are independent channels: receive out of send order
        assert w.comm(1).Recv(source=0, tag=9)[0] == 20.0
        assert w.comm(1).Recv(source=0, tag=5)[0] == 10.0

    def test_source_matching(self, make_world):
        w = make_world(3)
        w.comm(0).Send(np.array([1.0]), dest=2, tag=0)
        w.comm(1).Send(np.array([2.0]), dest=2, tag=0)
        assert w.comm(2).Recv(source=1, tag=0)[0] == 2.0
        assert w.comm(2).Recv(source=0, tag=0)[0] == 1.0

    def test_send_copies_buffer(self, make_world):
        w = make_world(2)
        buf = np.zeros(3)
        w.comm(0).Send(buf, dest=1)
        buf[:] = 9.0
        np.testing.assert_array_equal(
            w.comm(1).Recv(source=0), np.zeros(3))

    def test_isend_equivalent_under_phases(self, make_world):
        w = make_world(2)
        w.comm(0).Isend(np.array([4.0]), dest=1, tag=3)
        assert w.comm(1).Recv(source=0, tag=3)[0] == 4.0

    def test_recv_without_message_raises(self, make_world):
        w = make_world(2)
        with pytest.raises(MessageNotFoundError, match="no pending message"):
            w.comm(0).Recv(source=1, tag=0)

    def test_probe_never_blocks(self, make_world):
        w = make_world(2)
        assert not w.comm(1).probe(source=0)
        w.comm(0).Send(np.zeros(1), dest=1)
        assert w.comm(1).probe(source=0)
        assert not w.comm(1).probe(source=0, tag=4)

    def test_invalid_ranks(self, make_world):
        w = make_world(2)
        with pytest.raises(ValueError):
            w.comm(5)
        with pytest.raises(ValueError):
            w.comm(0).Send(np.zeros(1), dest=9)

    def test_preserves_dtype_and_shape(self, make_world):
        w = make_world(2)
        a = np.arange(12, dtype=np.int64).reshape(3, 4)
        w.comm(0).Send(a, dest=1, tag=2)
        out = w.comm(1).Recv(source=0, tag=2)
        assert out.dtype == a.dtype and out.shape == a.shape
        np.testing.assert_array_equal(out, a)


class TestCollectives:
    def test_allreduce_sum_identity(self, make_world):
        w = make_world(3)
        results = [w.comm(r).allreduce_sum(r + 1) for r in range(3)]
        assert results[2] == 6
        assert results[:2] == [None, None]

    def test_allreduce_max_identity(self, make_world):
        w = make_world(4)
        vals = [3.0, 7.5, -1.0, 2.0]
        results = [w.comm(r).allreduce_max(vals[r]) for r in range(4)]
        assert results[-1] == 7.5

    def test_gather_bytes_round_trip(self, make_world):
        w = make_world(3)
        payloads = [b"rank0", b"rank1-data", b"r2"]
        assert w.gather_bytes(payloads, root=0, tag=99) == payloads

    def test_gather_bytes_nonzero_root(self, make_world):
        w = make_world(3)
        payloads = [b"a", b"bb", b"ccc"]
        assert w.gather_bytes(payloads, root=2) == payloads

    def test_gather_bytes_size_mismatch(self, make_world):
        w = make_world(2)
        with pytest.raises(ValueError, match="one payload per rank"):
            w.gather_bytes([b"x"])


class TestAccounting:
    def test_log_totals(self, make_world):
        w = make_world(3)
        w.comm(0).Send(np.zeros(10), dest=1)
        w.comm(1).Send(np.zeros(5), dest=2)
        assert w.log.count == 2
        assert w.log.total_bytes == 15 * 8
        assert w.log.by_pair()[(0, 1)] == 80

    def test_log_tuples_ordered(self, make_world):
        w = make_world(2)
        w.comm(0).Send(np.zeros(2), dest=1, tag=4)
        w.comm(1).Send(np.zeros(3), dest=0, tag=6)
        assert w.log.as_tuples() == [(0, 1, 4, 16), (1, 0, 6, 24)]

    def test_gather_bytes_logged(self, make_world):
        w = make_world(3)
        w.gather_bytes([b"abc", b"de", b"f"], root=0, tag=11)
        recs = [r for r in w.log.records if r.tag == 11]
        assert len(recs) == 2  # non-root ranks only


class TestRankFailure:
    def test_failed_rank_refuses_send(self, make_world):
        w = make_world(2)
        w.fail_rank(1)
        assert w.failed_ranks == {1}
        with pytest.raises(RankFailedError):
            w.comm(0).Send(np.zeros(1), dest=1)

    def test_failed_rank_refuses_recv(self, make_world):
        w = make_world(2)
        w.comm(0).Send(np.zeros(1), dest=1)
        w.fail_rank(1)
        with pytest.raises(RankFailedError):
            w.comm(1).Recv(source=0)

    def test_fail_rank_out_of_range(self, make_world):
        w = make_world(2)
        with pytest.raises(ValueError):
            w.fail_rank(7)


class TestFaultInjection:
    def test_drop(self, make_world):
        inj = FaultInjector(seed=1)
        inj.add("mpi.send", mode="drop", probability=1.0)
        w = make_world(2, fault_injector=inj)
        w.comm(0).Send(np.zeros(4), dest=1)
        assert w.dropped == 1
        assert not w.comm(1).probe(source=0)

    def test_corrupt_changes_payload(self, make_world):
        inj = FaultInjector(seed=7)
        inj.add("mpi.send", mode="corrupt", probability=1.0)
        w = make_world(2, fault_injector=inj)
        a = np.zeros(16)
        w.comm(0).Send(a, dest=1)
        out = w.comm(1).Recv(source=0)
        assert out.shape == a.shape
        assert not np.array_equal(out, a)

    def test_delayed_delivery(self, make_world):
        inj = FaultInjector(seed=42)
        inj.add("mpi.send", mode="delay", probability=1.0)
        w = make_world(2, fault_injector=inj)
        if w.name == "mpi4py":
            pytest.skip("mpi4py delivers eagerly; no delay parking")
        w.comm(0).Send(np.arange(3.0), dest=1, tag=8)
        assert w.log.count == 1  # delayed messages are still logged
        assert not w.comm(1).probe(source=0, tag=8)
        assert w.deliver_delayed() == 1
        np.testing.assert_array_equal(
            w.comm(1).Recv(source=0, tag=8), np.arange(3.0))

    def test_rank_failure_fault(self, make_world):
        inj = FaultInjector(seed=1)
        inj.add("mpi.send", mode="rank_failure", probability=1.0)
        w = make_world(2, fault_injector=inj)
        with pytest.raises(RankFailedError):
            w.comm(0).Send(np.zeros(1), dest=1)
        assert 0 in w.failed_ranks


class TestExecutionPlane:
    def test_programs_run_and_keep_state(self, make_world):
        w = make_world(3)
        w.start_programs(make_echo, [(float(r),) for r in range(3)])
        assert w.call_all("bump") == [1, 1, 1]
        assert w.call_all("bump") == [2, 2, 2]
        idents = w.call_all("identity")
        if getattr(w, "spmd", False):
            assert len(idents) == 1
        else:
            assert idents == [(0, 0.0), (1, 1.0), (2, 2.0)]

    def test_array_payloads_roundtrip(self, make_world):
        w = make_world(2)
        w.start_programs(make_echo, [(1.0,), (2.0,)])
        arrs = [np.arange(6.0).reshape(2, 3) + r for r in range(2)]
        res = w.call_all("scale", [(a, 3.0) for a in arrs])
        for r, out in enumerate(res):
            np.testing.assert_array_equal(out, arrs[r] * 3.0 + (r + 1.0))

    def test_call_one(self, make_world):
        w = make_world(2)
        w.start_programs(make_echo, [(0.0,), (5.0,)])
        rank = 0 if getattr(w, "spmd", False) else 1
        a = np.random.default_rng(0).random(32)
        out, checksum = w.call_one(rank, "roundtrip", a)
        np.testing.assert_array_equal(out, a)
        assert checksum == pytest.approx(float(a.sum()))

    def test_call_before_start_raises(self, make_world):
        w = make_world(2)
        with pytest.raises(RuntimeError, match="start_programs"):
            w.call_all("bump")

    def test_typed_exceptions_propagate(self, make_world):
        for kind, exc_type in [("value", ValueError),
                               ("zero", ZeroDivisionError),
                               ("rank", RankFailedError),
                               ("message", MessageNotFoundError)]:
            w = make_world(2)
            w.start_programs(make_failing, [(0, kind), (0, kind)])
            with pytest.raises(exc_type, match="deliberate"):
                w.call_all("work")
            w.close()

    def test_failed_rank_program_refuses(self, make_world):
        w = make_world(2)
        w.start_programs(make_echo, [(0.0,), (0.0,)])
        w.call_all("bump")
        w.fail_rank(0)
        with pytest.raises(RankFailedError):
            w.call_all("bump")

    def test_per_rank_args_size_mismatch(self, make_world):
        w = make_world(3)
        with pytest.raises(ValueError, match="per-rank args"):
            w.start_programs(make_echo, [(0.0,)])


class TestMultiprocessingIsolation:
    """Properties specific to the out-of-process backend: ranks really
    live in separate processes, and worker death maps to rank failure."""

    @pytest.fixture(autouse=True)
    def _require_mp(self):
        reason = transport_unavailable_reason("multiprocessing")
        if reason is not None:  # pragma: no cover - always available
            pytest.skip(reason)

    def test_ranks_run_in_distinct_processes(self):
        with create_transport("multiprocessing", size=3) as w:
            w.start_programs(make_echo, [(0.0,)] * 3)
            pids = w.call_all("pid")
            assert len(set(pids)) == 3
            assert os.getpid() not in pids

    def test_inprocess_runs_in_driver(self):
        with create_transport("inprocess", size=3) as w:
            w.start_programs(make_echo, [(0.0,)] * 3)
            assert set(w.call_all("pid")) == {os.getpid()}

    def test_worker_death_is_rank_failure(self):
        with create_transport("multiprocessing", size=2) as w:
            w.start_programs(make_echo, [(0.0,), (0.0,)])
            w._workers[1].proc.terminate()
            w._workers[1].proc.join()
            with pytest.raises(RankFailedError):
                w.call_all("bump")
            assert 1 in w.failed_ranks

    def test_pool_survives_program_exception(self):
        with create_transport("multiprocessing", size=2) as w:
            w.start_programs(make_failing, [(0, "value"), (0, "value")])
            with pytest.raises(ValueError):
                w.call_all("work")
            w.start_programs(make_echo, [(0.0,), (0.0,)])
            assert w.call_all("bump") == [1, 1]

    def test_large_payload_growth(self):
        with create_transport("multiprocessing", size=1) as w:
            w.start_programs(make_echo, [(0.0,)])
            big = np.random.default_rng(3).random((256, 256, 4))  # 2 MiB
            out, _ = w.call_one(0, "roundtrip", big)
            np.testing.assert_array_equal(out, big)

    def test_message_plane_spawns_no_workers(self):
        with create_transport("multiprocessing", size=4) as w:
            w.comm(0).Send(np.zeros(8), dest=3)
            w.comm(3).Recv(source=0)
            assert w._workers is None


class TestRegistry:
    def test_resolve_explicit(self):
        assert resolve_transport_name("inprocess") == "inprocess"
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport_name("carrier-pigeon")

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "multiprocessing")
        assert resolve_transport_name() == "multiprocessing"
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert resolve_transport_name() == "inprocess"

    def test_available_contains_reference(self):
        names = available_transports()
        assert "inprocess" in names and "multiprocessing" in names

    def test_default_is_inprocess(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with create_transport(size=2) as w:
            assert isinstance(w, InProcessTransport)
            assert w.name == "inprocess"

    def test_mpi4py_reason_or_available(self):
        reason = transport_unavailable_reason("mpi4py")
        if reason is not None:
            assert "mpi4py" in reason
        else:  # pragma: no cover - environment-dependent
            assert "mpi4py" in available_transports()


# ---------------------------------------------------------------------------
# hypothesis: random schedules behave identically across backends
# ---------------------------------------------------------------------------
_send_op = st.tuples(
    st.integers(min_value=0, max_value=2),   # source
    st.integers(min_value=0, max_value=2),   # dest
    st.integers(min_value=0, max_value=4),   # tag
    st.integers(min_value=1, max_value=64),  # length
)


def _both_worlds(size=3, seed=None):
    worlds = []
    for name in ("inprocess", "multiprocessing"):
        inj = FaultInjector(seed=seed) if seed is not None else None
        worlds.append(create_transport(name, size=size, fault_injector=inj))
    return worlds


class TestScheduleEquivalence:
    @given(schedule=st.lists(_send_op, min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_logs_and_payloads_identical(self, schedule):
        w_in, w_mp = _both_worlds()
        try:
            for i, (src, dst, tag, n) in enumerate(schedule):
                payload = np.arange(n, dtype=float) + i
                w_in.comm(src).Send(payload, dest=dst, tag=tag)
                w_mp.comm(src).Send(payload, dest=dst, tag=tag)
            assert w_in.log.as_tuples() == w_mp.log.as_tuples()
            assert w_in.pending_messages() == w_mp.pending_messages()
            for src, dst, tag, _ in schedule:
                got_in = w_in.comm(dst).Recv(source=src, tag=tag)
                got_mp = w_mp.comm(dst).Recv(source=src, tag=tag)
                np.testing.assert_array_equal(got_in, got_mp)
        finally:
            w_in.close()
            w_mp.close()

    @given(
        schedule=st.lists(_send_op, min_size=1, max_size=20),
        seed=st.sampled_from([1, 7, 42]),
        p_drop=st.sampled_from([0.0, 0.3, 0.7]),
    )
    @settings(max_examples=25, deadline=None)
    def test_faulty_schedules_identical(self, schedule, seed, p_drop):
        w_in, w_mp = _both_worlds(seed=seed)
        try:
            for w in (w_in, w_mp):
                w.faults.add("mpi.send", mode="drop", probability=p_drop)
                w.faults.add("mpi.send", mode="corrupt",
                             probability=0.5 * p_drop)
            for i, (src, dst, tag, n) in enumerate(schedule):
                payload = np.arange(n, dtype=float) + i
                w_in.comm(src).Send(payload, dest=dst, tag=tag)
                w_mp.comm(src).Send(payload, dest=dst, tag=tag)
            assert w_in.dropped == w_mp.dropped
            assert w_in.log.as_tuples() == w_mp.log.as_tuples()
            for src, dst, tag, _ in schedule:
                if w_in.comm(dst).probe(source=src, tag=tag):
                    assert w_mp.comm(dst).probe(source=src, tag=tag)
                    np.testing.assert_array_equal(
                        w_in.comm(dst).Recv(source=src, tag=tag),
                        w_mp.comm(dst).Recv(source=src, tag=tag))
                else:
                    assert not w_mp.comm(dst).probe(source=src, tag=tag)
        finally:
            w_in.close()
            w_mp.close()


# ---------------------------------------------------------------------------
# fault-injection matrix: deterministic replay, seeds {1, 7, 42}
# ---------------------------------------------------------------------------
FAULT_SEEDS = (1, 7, 42)


def _faulty_run(name, seed):
    """One fixed message schedule under a mixed fault recipe; returns
    the observables a replay must reproduce exactly."""
    inj = FaultInjector(seed=seed)
    inj.add("mpi.send", mode="drop", probability=0.25)
    inj.add("mpi.send", mode="corrupt", probability=0.2)
    inj.add("mpi.send", mode="delay", probability=0.2)
    w = create_transport(name, size=4, fault_injector=inj)
    try:
        received = []
        for i in range(40):
            src, dst, tag = i % 4, (i + 1) % 4, i % 3
            w.comm(src).Send(np.full(8, float(i)), dest=dst, tag=tag)
        w.deliver_delayed()
        for i in range(40):
            src, dst, tag = i % 4, (i + 1) % 4, i % 3
            while w.comm(dst).probe(source=src, tag=tag):
                received.append(w.comm(dst).Recv(source=src, tag=tag).copy())
        return {
            "log": w.log.as_tuples(),
            "dropped": w.dropped,
            # crc of raw bytes: corrupt faults can make NaN payloads,
            # and NaN != NaN would break a float-sum digest
            "payload_digest": [zlib.crc32(a.tobytes()) for a in received],
        }
    finally:
        w.close()


class TestFaultMatrix:
    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_replay_deterministic_inprocess(self, seed):
        assert _faulty_run("inprocess", seed) == _faulty_run("inprocess", seed)

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_replay_identical_across_backends(self, seed):
        assert (_faulty_run("inprocess", seed)
                == _faulty_run("multiprocessing", seed))

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_rank_failure_same_typed_exception(self, seed):
        outcomes = []
        for name in ("inprocess", "multiprocessing"):
            inj = FaultInjector(seed=seed)
            inj.add("mpi.send", mode="rank_failure", probability=0.15,
                    rank=2)
            w = create_transport(name, size=4, fault_injector=inj)
            try:
                sent = 0
                failed_at = None
                for i in range(60):
                    try:
                        w.comm(i % 4).Send(np.zeros(4), dest=(i + 1) % 4)
                        sent += 1
                    except RankFailedError:
                        failed_at = i
                        break
                outcomes.append((sent, failed_at, tuple(w.failed_ranks)))
            finally:
                w.close()
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][2] == (2,)

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_worker_exception_types_match_inprocess(self, seed):
        """The mp control plane re-raises the same types the in-process
        backend raises for the same failing programs."""
        rng = np.random.default_rng(seed)
        kind = ["value", "zero", "rank", "message"][int(rng.integers(4))]
        raised = []
        for name in ("inprocess", "multiprocessing"):
            w = create_transport(name, size=2)
            try:
                w.start_programs(make_failing, [(1, kind), (1, kind)])
                with pytest.raises(Exception) as excinfo:
                    w.call_all("work")
                raised.append((type(excinfo.value).__name__,
                               str(excinfo.value)))
            finally:
                w.close()
        assert raised[0] == raised[1]
