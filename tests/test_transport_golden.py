"""Cross-transport golden equivalence for the parallel lifted jet.

The ISSUE 6 acceptance criterion for the transport refactor: the
lifted-jet parallel scenario (chemistry load balancing enabled) must be
*bitwise identical* run-to-run on the in-process reference transport,
and agree to <= 1e-12 relative on the multiprocessing backend. The
committed golden under ``tests/goldens/lifted_jet_parallel.json`` pins
the in-process numbers; this module pins the backends to each other.

The multiprocessing comparison is the teeth of the suite: every array
that crosses the execution plane (conserved blocks, deferred-reaction
primitives, chemlb shipments, filtered fields) must survive the
SharedMemory round trip without perturbation. In practice the two
backends agree *bitwise* — the 1e-12 bound is the contract, not the
observation.
"""

import numpy as np
import pytest

from repro.analysis.golden import (
    LIFTED_JET_PARALLEL_DT,
    LIFTED_JET_PARALLEL_STEPS,
    lifted_jet_parallel_solver,
)
from repro.parallel.comm import transport_unavailable_reason

pytestmark = [pytest.mark.transport, pytest.mark.golden, pytest.mark.slow]

#: contract bound for out-of-process backends (in-process is bitwise)
MP_RTOL = 1e-12


def _run(comm_transport: str):
    """Run the golden scenario; return (final u, cells shipped)."""
    solver = lifted_jet_parallel_solver(comm_transport)
    try:
        for _ in range(LIFTED_JET_PARALLEL_STEPS):
            solver.step(LIFTED_JET_PARALLEL_DT)
        u = np.array(solver.state.u, copy=True)
        shipped = solver.chemlb.last_plan.cells_shipped
    finally:
        solver.close()
    return u, shipped


@pytest.fixture(scope="module")
def inprocess_run():
    return _run("inprocess")


def test_inprocess_bitwise_reproducible(inprocess_run):
    """Two in-process runs of the scenario are bitwise identical."""
    u1, _ = inprocess_run
    u2, _ = _run("inprocess")
    assert u1.shape == u2.shape
    assert np.array_equal(u1, u2), (
        "in-process transport is not run-to-run deterministic"
    )


def test_chemlb_path_active(inprocess_run):
    """The scenario genuinely exercises chemistry load balancing."""
    _, shipped = inprocess_run
    assert shipped > 0, (
        "lifted_jet_parallel no longer ships chemistry cells; the "
        "cross-transport test is not covering the chemlb path"
    )


def test_multiprocessing_matches_inprocess(inprocess_run):
    """Multiprocessing backend agrees to <= 1e-12 relative (chemlb on)."""
    reason = transport_unavailable_reason("multiprocessing")
    if reason:
        pytest.skip(reason)
    u_ref, shipped_ref = inprocess_run
    u_mp, shipped_mp = _run("multiprocessing")
    assert u_mp.shape == u_ref.shape
    # identical balancing decisions on both backends
    assert shipped_mp == shipped_ref
    scale = np.max(np.abs(u_ref), axis=tuple(range(1, u_ref.ndim)),
                   keepdims=True)
    rel = np.abs(u_mp - u_ref) / np.where(scale == 0.0, 1.0, scale)
    worst = float(rel.max())
    assert worst <= MP_RTOL, (
        f"multiprocessing deviates from in-process by {worst:.3e} "
        f"relative (contract: {MP_RTOL:.0e})"
    )
