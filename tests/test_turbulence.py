"""Tests for synthetic turbulence and turbulence statistics."""

import numpy as np
import pytest

from repro.turbulence import (
    energy_spectrum,
    integral_length_scale,
    passot_pouquet,
    rms_fluctuation,
    synthetic_velocity_field,
    turbulence_scales,
    von_karman_pao,
)
from repro.turbulence.synthetic import divergence


class TestSpectra:
    def test_passot_pouquet_normalization(self):
        u_rms, kp = 2.0, 10.0
        k = np.linspace(0.0, 200.0, 20000)
        e = passot_pouquet(k, u_rms, kp)
        ke = np.trapezoid(e, k)
        assert ke == pytest.approx(1.5 * u_rms**2, rel=1e-3)

    def test_passot_pouquet_peak_location(self):
        k = np.linspace(0.1, 50.0, 5000)
        e = passot_pouquet(k, 1.0, 10.0)
        # E ~ k^4 exp(-2(k/kp)^2) peaks at k = kp
        assert k[np.argmax(e)] == pytest.approx(10.0, rel=0.02)

    def test_von_karman_pao_normalization(self):
        k = np.linspace(1e-3, 4000.0, 40000)
        e = von_karman_pao(k, 1.5, 0.1, 0.01)
        assert np.trapezoid(e, k) == pytest.approx(1.5 * 1.5**2, rel=0.05)

    def test_spectrum_of_single_mode(self):
        n, L = 64, 2 * np.pi
        x = np.arange(n) * L / n
        xx, yy = np.meshgrid(x, x, indexing="ij")
        u = np.sin(4 * xx)
        v = np.zeros_like(u)
        k, e = energy_spectrum([u, v], (L, L))
        dk = k[1] - k[0]
        total = (e * dk).sum()
        assert total == pytest.approx(0.25, rel=1e-6)  # <u^2>/2 of sin
        assert abs(k[np.argmax(e)] - 4.0) < 2 * dk


class TestSyntheticField:
    def test_rms_matches_target(self):
        vel = synthetic_velocity_field((48, 48), (1.0, 1.0), u_rms=2.5,
                                       length_scale=0.2, seed=1)
        assert rms_fluctuation(vel) == pytest.approx(2.5, rel=1e-6)

    def test_divergence_free(self):
        vel = synthetic_velocity_field((32, 32), (1.0, 1.0), u_rms=1.0,
                                       length_scale=0.25, seed=2)
        div = divergence(vel, (1.0, 1.0))
        # compare against typical gradient magnitude (spectral roundoff)
        grad_scale = np.abs(np.gradient(vel[0], 1.0 / 32)[0]).max()
        assert np.abs(div).max() < 1e-5 * max(grad_scale, 1.0)

    def test_zero_mean(self):
        vel = synthetic_velocity_field((32, 32), (1.0, 1.0), u_rms=1.0,
                                       length_scale=0.25, seed=3)
        for v in vel:
            assert abs(v.mean()) < 1e-12

    def test_reproducible(self):
        a = synthetic_velocity_field((16, 16), (1.0, 1.0), 1.0, 0.3, seed=7)
        b = synthetic_velocity_field((16, 16), (1.0, 1.0), 1.0, 0.3, seed=7)
        np.testing.assert_array_equal(a[0], b[0])

    def test_3d_field(self):
        vel = synthetic_velocity_field((16, 16, 16), (1.0, 1.0, 1.0), 1.0,
                                       0.3, seed=4)
        assert len(vel) == 3
        div = divergence(vel, (1.0, 1.0, 1.0))
        assert np.abs(div).max() < 1e-5

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            synthetic_velocity_field((16,), (1.0,), 1.0, 0.3)

    def test_length_scale_controls_structure(self):
        """Larger length scale -> larger integral scale."""
        small = synthetic_velocity_field((64, 64), (1.0, 1.0), 1.0, 0.08, seed=5)
        large = synthetic_velocity_field((64, 64), (1.0, 1.0), 1.0, 0.4, seed=5)
        l_s = integral_length_scale(small[1], 1.0, axis=1)
        l_l = integral_length_scale(large[1], 1.0, axis=1)
        assert l_l > l_s


class TestStatistics:
    def test_rms_of_known_field(self):
        x = np.linspace(0, 2 * np.pi, 128, endpoint=False)
        u = np.sqrt(2.0) * np.sin(x)[None, :] * np.ones((8, 1))
        assert rms_fluctuation([u]) == pytest.approx(1.0, rel=1e-6)

    def test_integral_scale_of_cosine(self):
        """Autocorrelation of cos(kx) is cos(kr): integral to first zero
        is 1/k * integral_0^{pi/2} cos = 1/k."""
        n, L = 256, 2 * np.pi
        x = np.arange(n) * L / n
        u = np.cos(4 * x)
        l = integral_length_scale(u, L)
        assert l == pytest.approx(1.0 / 4.0, rel=0.05)

    def test_turbulence_scales_consistency(self):
        vel = synthetic_velocity_field((64, 64), (1e-2, 1e-2), u_rms=3.0,
                                       length_scale=2e-3, seed=6)
        sc = turbulence_scales(vel, (1e-2, 1e-2), nu=1.5e-5,
                               flame_speed=1.8, flame_thickness=3e-4)
        assert sc.u_rms == pytest.approx(3.0, rel=1e-6)
        assert sc.dissipation > 0
        assert sc.kolmogorov < sc.l_integral
        assert sc.re_turb == pytest.approx(sc.u_rms * sc.l_integral / 1.5e-5)
        assert sc.karlovitz == pytest.approx((3e-4 / sc.kolmogorov) ** 2)
        d = sc.as_dict()
        assert set(d) == {"u_rms", "dissipation", "lt", "l_integral",
                          "kolmogorov", "Re_t", "Ka", "Da"}

    def test_higher_intensity_higher_karlovitz(self):
        """The Table 1 trend: u'/SL up -> Ka up."""
        kas = []
        for u_rms in (1.0, 3.0):
            vel = synthetic_velocity_field((48, 48), (1e-2, 1e-2), u_rms,
                                           2e-3, seed=8)
            sc = turbulence_scales(vel, (1e-2, 1e-2), nu=1.5e-5,
                                   flame_speed=1.8, flame_thickness=3e-4)
            kas.append(sc.karlovitz)
        assert kas[1] > kas[0]
