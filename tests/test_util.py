"""Tests for repro.util: constants, validation, timers."""

import time

import numpy as np
import pytest

from repro.util import (
    RU,
    P_ATM,
    Timer,
    TimerRegistry,
    check_in_range,
    check_positive,
    check_probability_vector,
    check_shape,
)


class TestConstants:
    def test_gas_constant(self):
        assert RU == pytest.approx(8.314462618, rel=1e-9)

    def test_atmosphere(self):
        assert P_ATM == 101325.0


class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 1.0)
        check_positive("x", np.array([1.0, 2.0]))

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0.0)

    def test_check_positive_rejects_negative_element(self):
        with pytest.raises(ValueError):
            check_positive("arr", np.array([1.0, -0.5]))

    def test_check_in_range(self):
        check_in_range("a", 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("a", 1.5, 0.0, 1.0)

    def test_check_shape(self):
        check_shape("m", np.zeros((2, 3)), (2, 3))
        with pytest.raises(ValueError, match="must have shape"):
            check_shape("m", np.zeros((3, 2)), (2, 3))

    def test_probability_vector_accepts(self):
        check_probability_vector("y", np.array([0.25, 0.75]))

    def test_probability_vector_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector("y", np.array([-0.1, 1.1]))

    def test_probability_vector_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector("y", np.array([0.2, 0.2]))


class TestTimers:
    def test_accumulates(self):
        t = Timer("t")
        with t:
            time.sleep(0.001)
        with t:
            time.sleep(0.001)
        assert t.count == 2
        assert t.total >= 0.002
        assert t.mean == pytest.approx(t.total / 2)

    def test_double_start_raises(self):
        t = Timer("t")
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("t").stop()

    def test_registry_reuses(self):
        reg = TimerRegistry()
        assert reg("a") is reg("a")
        assert reg("a") is not reg("b")

    def test_registry_report(self):
        reg = TimerRegistry()
        with reg("kernel"):
            pass
        assert "kernel" in reg.report()

    def test_mean_zero_when_unused(self):
        assert Timer("t").mean == 0.0

    def test_context_exit_on_exception_discards_interval(self):
        """An exception inside the with-block must leave the timer
        restartable and must not count the aborted interval."""
        t = Timer("t")
        with pytest.raises(ValueError, match="boom"):
            with t:
                raise ValueError("boom")
        assert not t.running
        assert t.count == 0
        assert t.total == 0.0
        # start() works again after the aborted context
        with t:
            pass
        assert t.count == 1

    def test_cancel_discards_running_interval(self):
        t = Timer("t")
        t.start()
        t.cancel()
        assert not t.running and t.count == 0
        t.cancel()  # idempotent when not running
        t.start()
        t.stop()
        assert t.count == 1

    def test_running_property(self):
        t = Timer("t")
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running

    def test_registry_iteration_is_creation_order(self):
        reg = TimerRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg(name)
        assert [t.name for t in reg] == ["zeta", "alpha", "mid"]
        assert reg.names() == ["zeta", "alpha", "mid"]
        assert len(reg) == 3
        assert "alpha" in reg and "missing" not in reg

    def test_registry_report_deterministic_for_ties(self):
        """Timers with equal totals (e.g. all zero) sort by name, so the
        report is stable across runs."""
        reg1, reg2 = TimerRegistry(), TimerRegistry()
        for name in ("c", "a", "b"):
            reg1(name)
        for name in ("b", "c", "a"):
            reg2(name)
        assert reg1.report() == reg2.report()
        lines = [l.split()[0] for l in reg1.report().splitlines()[1:]]
        assert lines == sorted(lines)
