"""Tests for the visualization substrate (§8)."""

import numpy as np
import pytest

from repro.viz import (
    ColorMap,
    ParallelCoordinates,
    TimeHistogram,
    TransferFunction,
    VolumeRenderer,
    fuse_fields,
    render_isosurface_mask,
    save_ppm,
    simultaneous_render,
)
from repro.viz.image import load_ppm


class TestTransfer:
    def test_colormap_endpoints(self):
        cm = ColorMap([(0.0, (0, 0, 0)), (1.0, (1, 1, 1))])
        np.testing.assert_allclose(cm(0.0), [0, 0, 0])
        np.testing.assert_allclose(cm(1.0), [1, 1, 1])
        np.testing.assert_allclose(cm(0.5), [0.5, 0.5, 0.5])

    def test_colormap_needs_two_stops(self):
        with pytest.raises(ValueError):
            ColorMap([(0.0, (0, 0, 0))])

    def test_colormap_ordering(self):
        with pytest.raises(ValueError):
            ColorMap([(1.0, (0, 0, 0)), (0.0, (1, 1, 1))])

    def test_transfer_normalization(self):
        tf = TransferFunction(100.0, 200.0, ColorMap.fire(), opacity=0.5)
        rgb, a = tf(np.array([100.0, 150.0, 250.0]))
        assert rgb.shape == (3, 3)
        np.testing.assert_allclose(a, 0.5)
        assert tf.normalize(250.0) == 1.0  # clipped

    def test_opacity_ramp(self):
        tf = TransferFunction(0.0, 1.0, ColorMap.fire(),
                              opacity=[(0.0, 0.0), (1.0, 1.0)])
        _, a = tf(np.array([0.0, 0.5, 1.0]))
        np.testing.assert_allclose(a, [0.0, 0.5, 1.0])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            TransferFunction(1.0, 1.0, ColorMap.fire())


class TestVolumeRenderer:
    def test_2d_field_shape(self):
        field = np.random.default_rng(0).random((24, 32))
        img = VolumeRenderer().render(
            field, TransferFunction(0, 1, ColorMap.fire(), 0.5)
        )
        assert img.shape == (24, 32, 3)
        assert img.min() >= 0 and img.max() <= 1

    def test_3d_compositing_opaque_front_hides_back(self):
        field = np.zeros((8, 8, 4))
        field[:, :, 0] = 1.0  # bright front slab
        tf = TransferFunction(0, 1, ColorMap([(0, (0, 0, 1)), (1, (1, 0, 0))]),
                              opacity=[(0.0, 0.0), (1.0, 1.0)])
        img = VolumeRenderer(axis=2).render(field, tf)
        # front sample fully opaque and red
        np.testing.assert_allclose(img[..., 0], 1.0, atol=1e-6)
        np.testing.assert_allclose(img[..., 2], 0.0, atol=1e-6)

    def test_transparent_volume_shows_background(self):
        field = np.zeros((4, 4))
        tf = TransferFunction(0, 1, ColorMap.fire(), opacity=0.0)
        img = VolumeRenderer(background=(0.2, 0.3, 0.4)).render(field, tf)
        np.testing.assert_allclose(img[0, 0], [0.2, 0.3, 0.4], atol=1e-12)

    def test_layers_must_match_shape(self):
        tf = TransferFunction(0, 1, ColorMap.fire(), 0.5)
        with pytest.raises(ValueError):
            VolumeRenderer().render_multi(
                [(np.zeros((4, 4)), tf), (np.zeros((5, 4)), tf)]
            )

    def test_multivariate_both_visible(self):
        """Fused rendering keeps spatially disjoint structures visible."""
        a = np.zeros((16, 16))
        b = np.zeros((16, 16))
        # mid-range values: fire(0.7) is orange, cool(0.7) blue-cyan
        # (fire saturates to white at 1.0); pin the auto-scaled range
        # with a single full-intensity pixel per field
        a[2:6, 2:6] = 0.7
        b[10:14, 10:14] = 0.7
        a[0, 0] = 1.0
        b[15, 15] = 1.0
        img = simultaneous_render({"HO2": a, "OH": b})
        lit_a = img[3, 3].sum()
        lit_b = img[12, 12].sum()
        dark = img[8, 8].sum()
        assert lit_a > dark and lit_b > dark
        # HO2 (fire) is warm; OH (cool) is blue-ish
        assert img[3, 3, 0] > img[3, 3, 2]
        assert img[12, 12, 2] > img[12, 12, 0]

    def test_isosurface_mask(self):
        f = np.linspace(0, 1, 101)
        m = render_isosurface_mask(f, 0.5, width=0.05)
        assert np.argmax(m) == 50
        assert m[50] == pytest.approx(1.0)
        assert m[0] < 1e-10

    def test_fuse_fields_weights(self):
        a = np.array([[0.0, 1.0]])
        b = np.array([[1.0, 0.0]])
        out = fuse_fields([a, b], weights=[3.0, 1.0])
        np.testing.assert_allclose(out, [[0.25, 0.75]])

    def test_fuse_fields_weight_mismatch(self):
        with pytest.raises(ValueError):
            fuse_fields([np.zeros((2, 2))], weights=[1, 2])


class TestImageIO:
    def test_ppm_roundtrip(self, tmp_path):
        img = np.random.default_rng(1).random((12, 10, 3))
        path = str(tmp_path / "x.ppm")
        save_ppm(path, img)
        back = load_ppm(path)
        assert back.shape == (12, 10, 3)
        np.testing.assert_allclose(back, img, atol=1 / 255)

    def test_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(str(tmp_path / "y.ppm"), np.zeros((4, 4)))


class TestParallelCoordinates:
    @pytest.fixture
    def pc(self):
        rng = np.random.default_rng(2)
        t = rng.random((20, 20))
        return ParallelCoordinates({"T": t, "OH": t**2, "chi": 1.0 - t})

    def test_selection_all_without_brush(self, pc):
        assert pc.selection().all()

    def test_brush_intersection(self, pc):
        pc.brush("T", 0.5, 1.0)
        frac1 = pc.selection().mean()
        pc.brush("OH", 0.5, 1.0)
        frac2 = pc.selection().mean()
        assert frac2 <= frac1

    def test_brush_reversed_bounds(self, pc):
        pc.brush("T", 1.0, 0.5)
        assert pc._brushes["T"] == (0.5, 1.0)

    def test_clear_brush(self, pc):
        pc.brush("T", 0.9, 1.0)
        pc.clear_brush("T")
        assert pc.selection().all()

    def test_unknown_variable(self, pc):
        with pytest.raises(KeyError):
            pc.brush("nope", 0, 1)

    def test_polylines_shape(self, pc):
        lines = pc.polylines(n_max=50)
        assert lines.shape[1] == 3
        assert lines.shape[0] <= 50
        assert lines.min() >= 0 and lines.max() <= 1

    def test_negative_correlation_found(self, pc):
        """The Fig 15 workflow: chi and T are perfectly anticorrelated."""
        assert pc.correlation("T", "chi") == pytest.approx(-1.0)

    def test_axis_histogram(self, pc):
        edges, counts = pc.axis_histogram("T", bins=8)
        assert counts.sum() == 400

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ParallelCoordinates({"a": np.zeros((2, 2)), "b": np.zeros((3, 2))})


class TestTimeHistogram:
    def test_accumulates(self):
        th = TimeHistogram(0.0, 1.0, bins=10)
        th.add_snapshot(0.0, np.full(100, 0.05))
        th.add_snapshot(1.0, np.full(100, 0.95))
        m = th.matrix
        assert m.shape == (2, 10)
        assert m[0, 0] == 100 and m[1, -1] == 100

    def test_normalized(self):
        th = TimeHistogram(0.0, 1.0, bins=4)
        th.add_snapshot(0.0, np.array([0.1, 0.1, 0.9]))
        n = th.normalized()
        assert n.max() == 1.0

    def test_interesting_steps(self):
        th = TimeHistogram(0.0, 1.0, bins=8)
        rng = np.random.default_rng(3)
        base = rng.random(500) * 0.3
        for t in range(4):
            th.add_snapshot(t, base)
        th.add_snapshot(4, base + 0.6)  # sudden shift
        assert 4 in th.interesting_steps(1)

    def test_temporal_brush(self):
        th = TimeHistogram(0.0, 1.0, bins=10)
        th.add_snapshot(0.0, np.array([0.05, 0.95]))
        frac = th.temporal_brush(0.0, 0.5)
        assert frac[0] == pytest.approx(0.5)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            TimeHistogram(1.0, 0.0)
