"""Tests for the Kepler-style workflow substrate (§9)."""

import numpy as np
import pytest

from repro.workflow import (
    Actor,
    Dashboard,
    Environment,
    ProcessNetworkDirector,
    ProvenanceStore,
    RemoteError,
    Token,
    Workflow,
)
from repro.workflow.actor import FunctionActor
from repro.workflow.actors import Collector
from repro.workflow.s3d_pipeline import (
    build_s3d_workflow,
    make_environment,
    run_s3d_workflow,
    simulate_s3d_run,
)


class _Counter(Actor):
    inputs: list = []
    outputs = ["out"]

    def __init__(self, name, n):
        super().__init__(name)
        self.n = n
        self.i = 0

    def fire(self, inputs):
        if self.i >= self.n:
            return None
        self.i += 1
        return {"out": Token(self.i)}


class TestEngine:
    def test_linear_pipeline(self):
        wf = Workflow()
        wf.add(_Counter("src", 3))
        wf.add(FunctionActor("double", lambda x: 2 * x))
        wf.add(Collector("sink"))
        wf.connect("src", "out", "double", "in")
        wf.connect("double", "out", "sink", "in")
        ProcessNetworkDirector(wf).run()
        assert [t.value for t in wf.actors["sink"].items] == [2, 4, 6]

    def test_fan_out(self):
        wf = Workflow()
        wf.add(_Counter("src", 2))
        wf.add(Collector("a"))
        wf.add(Collector("b"))
        wf.connect("src", "out", "a", "in")
        wf.connect("src", "out", "b", "in")
        ProcessNetworkDirector(wf).run()
        assert len(wf.actors["a"].items) == 2
        assert len(wf.actors["b"].items) == 2

    def test_validation_catches_unwired(self):
        wf = Workflow()
        wf.add(FunctionActor("f", lambda x: x))
        with pytest.raises(ValueError, match="unconnected"):
            wf.validate()

    def test_duplicate_actor_name(self):
        wf = Workflow()
        wf.add(Collector("x"))
        with pytest.raises(ValueError):
            wf.add(Collector("x"))

    def test_bad_port_names(self):
        wf = Workflow()
        wf.add(_Counter("src", 1))
        wf.add(Collector("sink"))
        with pytest.raises(ValueError, match="no output port"):
            wf.connect("src", "nope", "sink", "in")
        with pytest.raises(ValueError, match="no input port"):
            wf.connect("src", "out", "sink", "nope")

    def test_provenance_chain(self):
        wf = Workflow()
        wf.add(_Counter("src", 1))
        wf.add(FunctionActor("f", lambda x: x + 1))
        wf.add(FunctionActor("g", lambda x: x * 10))
        wf.add(Collector("sink"))
        wf.connect("src", "out", "f", "in")
        wf.connect("f", "out", "g", "in")
        wf.connect("g", "out", "sink", "in")
        ProcessNetworkDirector(wf).run()
        token = wf.actors["sink"].items[0]
        assert token.value == 20
        assert [a for a, _ in token.provenance] == ["f", "g"]


class TestEnvironment:
    def test_transfer_moves_bytes(self):
        env = Environment()
        env.add_machine("a")
        env.add_machine("b")
        env["a"].write("f", b"data")
        env.transfer("a", "f", "b", "f")
        assert env["b"].read("f") == b"data"
        assert env.transfer_bytes == 4

    def test_missing_file(self):
        env = Environment()
        env.add_machine("a")
        with pytest.raises(RemoteError):
            env["a"].read("missing")

    def test_fault_injection(self):
        env = Environment()
        env.add_machine("a")
        env.add_machine("b")
        env["a"].write("f", b"x")
        env.fail_next("transfer", 1)
        with pytest.raises(RemoteError):
            env.transfer("a", "f", "b", "f")
        # next one succeeds
        env.transfer("a", "f", "b", "f")
        assert env.failures_injected == 1

    def test_unknown_command(self):
        env = Environment()
        env.add_machine("a")
        with pytest.raises(RemoteError):
            env.execute("a", "nothere")

    def test_streams_speed_up(self):
        env = Environment(link_bandwidth=1e6, link_latency=0.0)
        env.add_machine("a")
        env.add_machine("b")
        env["a"].write("f", b"x" * 10**6)
        t1 = env.transfer("a", "f", "b", "f1", streams=1)
        t4 = env.transfer("a", "f", "b", "f2", streams=4)
        assert t4 == pytest.approx(t1 / 4)


class TestS3DPipeline:
    def test_end_to_end(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=3)
        wf, taps, d = run_s3d_workflow(env)
        # 3 checkpoints x 2 restart files -> 3 morphs of group 2
        assert len(taps["restart_done"].items) == 3
        # all netcdf converted and imaged
        assert len(taps["images"].items) == 6
        # data landed everywhere
        assert env["hpss"].listdir("morph/")
        assert env["sandia"].listdir("morph/")
        assert env["ucdavis"].listdir("netcdf/")

    def test_completion_log_gates_watcher(self):
        """Files without a COMPLETE entry are never picked up."""
        env = make_environment()
        env["jaguar"].write("restart/0000/part0.dat", b"partial")
        env["jaguar"].write("s3d.log", b"")  # nothing complete
        wf, taps, d = run_s3d_workflow(env)
        assert len(taps["restart_done"].items) == 0

    def test_fault_routes_errors(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=1)
        env.fail_next("convert", 100)  # persistent failure
        wf, taps, d = run_s3d_workflow(env)
        assert len(taps["conversion_errors"].items) == 2
        assert len(taps["images"].items) == 0

    def test_restart_skips_completed(self):
        """The ProcessFile/Transfer checkpointing: a rebuilt workflow
        does not repeat finished work but retries failures."""
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=2)
        # exactly enough injected failures to exhaust every convert
        # attempt in run 1 (4 files x 4 attempts), none left for run 2
        env.fail_next("convert", 16)
        ck = {}
        run_s3d_workflow(env, checkpoints=ck)
        bytes_before = env.transfer_bytes
        # restart with the failure gone
        wf2, taps2, d2 = run_s3d_workflow(env, checkpoints=ck)
        assert wf2.actors["move_netcdf"].skipped == 4
        assert len(taps2["images"].items) == 4
        # transfers were not repeated for the already-moved inputs
        assert wf2.actors["move_restart"].skipped == 4

    def test_minmax_series_parsed(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=2)
        wf, taps, d = run_s3d_workflow(env)
        rows = [r for t in taps["dashboard_series"].items for r in t.value]
        vars_seen = {r["variable"] for r in rows}
        assert vars_seen == {"T", "rho"}

    def test_workflow_isolated_from_simulation(self):
        """Workflow failures never modify jaguar's files (§9)."""
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=1)
        before = dict(env["jaguar"].files)
        env.fail_next("transfer", 3)
        run_s3d_workflow(env)
        assert env["jaguar"].files == before


class TestProvenance:
    def test_ancestor_closure(self):
        ps = ProvenanceStore()
        ps.record("b", "morph", inputs=("a1", "a2"))
        ps.record("c", "archive", inputs=("b",))
        assert ps.ancestors("c") == {"b", "a1", "a2"}

    def test_record_token(self):
        ps = ProvenanceStore()
        t = Token("x").derive("y", "convert").derive("z", "plot")
        ps.record_token("image.png", t)
        assert ps.activities_of("image.png") == ["plot"]
        assert len(ps) == 1

    def test_morph_provenance_tracks_all_parts(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=1)
        wf, taps, d = run_s3d_workflow(env)
        token = taps["restart_done"].items[0]
        acts = [a for a, _ in token.provenance]
        assert "morph" in acts and "archive" in acts


class TestDashboard:
    def test_job_lifecycle(self):
        db = Dashboard()
        db.submit_job("123", "jaguar", "chen")
        db.set_job_state("123", "running")
        assert db.jobs_on("jaguar")[0].state == "running"
        with pytest.raises(ValueError):
            db.set_job_state("123", "exploded")

    def test_series_and_trace(self):
        db = Dashboard()
        db.update_series([
            {"step": 100, "variable": "T", "min": 300.0, "max": 1500.0},
            {"step": 200, "variable": "T", "min": 300.0, "max": 1600.0},
        ])
        steps, lo, hi = db.trace("T")
        assert steps == [100, 200]
        assert db.latest("T") == (200, 300.0, 1600.0)

    def test_annotation_requires_image(self):
        db = Dashboard()
        with pytest.raises(KeyError):
            db.annotate("img", "user", "note")
        db.register_image("img")
        db.annotate("img", "user", "nice flame")
        assert db.annotations["img"] == [("user", "nice flame")]

    def test_render_text(self):
        db = Dashboard()
        db.submit_job("1", "jaguar", "chen")
        db.update_series([{"step": 1, "variable": "rho", "min": 0.1, "max": 1.0}])
        text = db.render_text()
        assert "jaguar" in text and "rho" in text
