"""Tests for the Kepler-style workflow substrate (§9)."""

import time

import numpy as np
import pytest

from repro.telemetry import Telemetry
from repro.workflow import (
    Actor,
    ActorFiringError,
    Dashboard,
    Environment,
    ProcessFile,
    ProcessNetworkDirector,
    ProvenanceStore,
    RemoteError,
    Token,
    Transfer,
    Workflow,
)
from repro.workflow.actor import FunctionActor
from repro.workflow.actors import Collector
from repro.workflow.s3d_pipeline import (
    build_s3d_workflow,
    make_environment,
    run_s3d_workflow,
    simulate_s3d_run,
)


class _Counter(Actor):
    inputs: list = []
    outputs = ["out"]

    def __init__(self, name, n):
        super().__init__(name)
        self.n = n
        self.i = 0

    def fire(self, inputs):
        if self.i >= self.n:
            return None
        self.i += 1
        return {"out": Token(self.i)}


class TestEngine:
    def test_linear_pipeline(self):
        wf = Workflow()
        wf.add(_Counter("src", 3))
        wf.add(FunctionActor("double", lambda x: 2 * x))
        wf.add(Collector("sink"))
        wf.connect("src", "out", "double", "in")
        wf.connect("double", "out", "sink", "in")
        ProcessNetworkDirector(wf).run()
        assert [t.value for t in wf.actors["sink"].items] == [2, 4, 6]

    def test_fan_out(self):
        wf = Workflow()
        wf.add(_Counter("src", 2))
        wf.add(Collector("a"))
        wf.add(Collector("b"))
        wf.connect("src", "out", "a", "in")
        wf.connect("src", "out", "b", "in")
        ProcessNetworkDirector(wf).run()
        assert len(wf.actors["a"].items) == 2
        assert len(wf.actors["b"].items) == 2

    def test_validation_catches_unwired(self):
        wf = Workflow()
        wf.add(FunctionActor("f", lambda x: x))
        with pytest.raises(ValueError, match="unconnected"):
            wf.validate()

    def test_duplicate_actor_name(self):
        wf = Workflow()
        wf.add(Collector("x"))
        with pytest.raises(ValueError):
            wf.add(Collector("x"))

    def test_bad_port_names(self):
        wf = Workflow()
        wf.add(_Counter("src", 1))
        wf.add(Collector("sink"))
        with pytest.raises(ValueError, match="no output port"):
            wf.connect("src", "nope", "sink", "in")
        with pytest.raises(ValueError, match="no input port"):
            wf.connect("src", "out", "sink", "nope")

    def test_provenance_chain(self):
        wf = Workflow()
        wf.add(_Counter("src", 1))
        wf.add(FunctionActor("f", lambda x: x + 1))
        wf.add(FunctionActor("g", lambda x: x * 10))
        wf.add(Collector("sink"))
        wf.connect("src", "out", "f", "in")
        wf.connect("f", "out", "g", "in")
        wf.connect("g", "out", "sink", "in")
        ProcessNetworkDirector(wf).run()
        token = wf.actors["sink"].items[0]
        assert token.value == 20
        assert [a for a, _ in token.provenance] == ["f", "g"]


class TestEnvironment:
    def test_transfer_moves_bytes(self):
        env = Environment()
        env.add_machine("a")
        env.add_machine("b")
        env["a"].write("f", b"data")
        env.transfer("a", "f", "b", "f")
        assert env["b"].read("f") == b"data"
        assert env.transfer_bytes == 4

    def test_missing_file(self):
        env = Environment()
        env.add_machine("a")
        with pytest.raises(RemoteError):
            env["a"].read("missing")

    def test_fault_injection(self):
        env = Environment()
        env.add_machine("a")
        env.add_machine("b")
        env["a"].write("f", b"x")
        env.fail_next("transfer", 1)
        with pytest.raises(RemoteError):
            env.transfer("a", "f", "b", "f")
        # next one succeeds
        env.transfer("a", "f", "b", "f")
        assert env.failures_injected == 1

    def test_unknown_command(self):
        env = Environment()
        env.add_machine("a")
        with pytest.raises(RemoteError):
            env.execute("a", "nothere")

    def test_streams_speed_up(self):
        env = Environment(link_bandwidth=1e6, link_latency=0.0)
        env.add_machine("a")
        env.add_machine("b")
        env["a"].write("f", b"x" * 10**6)
        t1 = env.transfer("a", "f", "b", "f1", streams=1)
        t4 = env.transfer("a", "f", "b", "f2", streams=4)
        assert t4 == pytest.approx(t1 / 4)


class TestS3DPipeline:
    def test_end_to_end(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=3)
        wf, taps, d = run_s3d_workflow(env)
        # 3 checkpoints x 2 restart files -> 3 morphs of group 2
        assert len(taps["restart_done"].items) == 3
        # all netcdf converted and imaged
        assert len(taps["images"].items) == 6
        # data landed everywhere
        assert env["hpss"].listdir("morph/")
        assert env["sandia"].listdir("morph/")
        assert env["ucdavis"].listdir("netcdf/")

    def test_completion_log_gates_watcher(self):
        """Files without a COMPLETE entry are never picked up."""
        env = make_environment()
        env["jaguar"].write("restart/0000/part0.dat", b"partial")
        env["jaguar"].write("s3d.log", b"")  # nothing complete
        wf, taps, d = run_s3d_workflow(env)
        assert len(taps["restart_done"].items) == 0

    def test_fault_routes_errors(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=1)
        env.fail_next("convert", 100)  # persistent failure
        wf, taps, d = run_s3d_workflow(env)
        assert len(taps["conversion_errors"].items) == 2
        assert len(taps["images"].items) == 0

    def test_restart_skips_completed(self):
        """The ProcessFile/Transfer checkpointing: a rebuilt workflow
        does not repeat finished work but retries failures."""
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=2)
        # exactly enough injected failures to exhaust every convert
        # attempt in run 1 (4 files x 4 attempts), none left for run 2
        env.fail_next("convert", 16)
        ck = {}
        run_s3d_workflow(env, checkpoints=ck)
        bytes_before = env.transfer_bytes
        # restart with the failure gone
        wf2, taps2, d2 = run_s3d_workflow(env, checkpoints=ck)
        assert wf2.actors["move_netcdf"].skipped == 4
        assert len(taps2["images"].items) == 4
        # transfers were not repeated for the already-moved inputs
        assert wf2.actors["move_restart"].skipped == 4

    def test_minmax_series_parsed(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=2)
        wf, taps, d = run_s3d_workflow(env)
        rows = [r for t in taps["dashboard_series"].items for r in t.value]
        vars_seen = {r["variable"] for r in rows}
        assert vars_seen == {"T", "rho"}

    def test_workflow_isolated_from_simulation(self):
        """Workflow failures never modify jaguar's files (§9)."""
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=1)
        before = dict(env["jaguar"].files)
        env.fail_next("transfer", 3)
        run_s3d_workflow(env)
        assert env["jaguar"].files == before


class _Boom(Actor):
    """Pass-through actor that raises on selected values."""

    inputs = ["in"]
    outputs = ["out"]

    def __init__(self, name, should_fail):
        super().__init__(name)
        self.should_fail = should_fail
        self.calls = 0

    def fire(self, inputs):
        self.calls += 1
        token = inputs["in"]
        if self.should_fail(token.value, self.calls):
            raise RuntimeError(f"boom on {token.value}")
        return {"out": token.derive(token.value, self.name)}


class _FailingSource(Actor):
    inputs: list = []
    outputs = ["out"]

    def fire(self, inputs):
        raise RuntimeError("source exploded")


def _two_machine_env():
    env = Environment()
    env.add_machine("a")
    env.add_machine("b")
    env["a"].register("op", lambda m, src, dst: m.write(dst, b"processed"))
    env["a"].write("f.dat", b"data")
    return env


class TestActorRetryBranches:
    """The RemoteError except-branches of ProcessFile and Transfer."""

    def test_processfile_retries_then_succeeds(self):
        env = _two_machine_env()
        tel = Telemetry()
        pf = ProcessFile("conv", env, "a", "op", max_retries=3, telemetry=tel)
        env.fail_next("op", 2)
        out = pf.fire({"file": Token("f.dat")})
        assert "file" in out and pf.checkpoint["conv:f.dat"] == "done"
        retries = [e for e in pf.log if e[0] == "retry"]
        assert len(retries) == 2
        assert tel.metrics.counter("workflow.process.retries").value == 2

    def test_processfile_exhausts_retries_emits_error_token(self):
        env = _two_machine_env()
        tel = Telemetry()
        pf = ProcessFile("conv", env, "a", "op", max_retries=2, telemetry=tel)
        env.fail_next("op", 100)
        out = pf.fire({"file": Token("f.dat")})
        assert set(out) == {"errors"}
        assert "injected failure" in out["errors"].value
        assert pf.checkpoint["conv:f.dat"] == "failed"
        assert pf.log[-1][0] == "failed"
        assert tel.metrics.counter("workflow.process.failures").value == 1
        # all 1 + max_retries attempts hit the except branch
        assert tel.metrics.counter("workflow.process.retries").value == 3

    def test_transfer_retries_then_succeeds(self):
        env = _two_machine_env()
        tel = Telemetry()
        mv = Transfer("move", env, "a", "b", max_retries=3, telemetry=tel)
        env.fail_next("transfer", 2)
        out = mv.fire({"file": Token("f.dat")})
        assert out["file"].value == "f.dat"
        assert env["b"].read("f.dat") == b"data"
        assert mv.checkpoint["move:f.dat"] == "done"
        assert tel.metrics.counter("workflow.transfer.retries").value == 2

    def test_transfer_exhausts_retries_returns_none(self):
        env = _two_machine_env()
        tel = Telemetry()
        mv = Transfer("move", env, "a", "b", max_retries=1, telemetry=tel)
        env.fail_next("transfer", 100)
        out = mv.fire({"file": Token("f.dat")})
        assert out is None
        assert not env["b"].exists("f.dat")
        assert mv.checkpoint["move:f.dat"] == "failed"
        assert mv.log[-1] == ("failed", "f.dat")
        assert tel.metrics.counter("workflow.transfer.retries").value == 2


class TestDirectorFaultHandling:
    def _pipeline(self, boom, n=3, **director_kwargs):
        wf = Workflow()
        wf.add(_Counter("src", n))
        wf.add(boom)
        wf.add(Collector("sink"))
        wf.connect("src", "out", boom.name, "in")
        wf.connect(boom.name, "out", "sink", "in")
        return wf, ProcessNetworkDirector(wf, **director_kwargs)

    def test_raise_mode_names_actor_and_round(self):
        boom = _Boom("boom", lambda v, calls: True)
        wf, d = self._pipeline(boom)
        with pytest.raises(ActorFiringError,
                           match="'boom' failed in round 0") as exc_info:
            d.run()
        err = exc_info.value
        assert err.actor_name == "boom"
        assert err.round_no == 0
        assert isinstance(err.original, RuntimeError)

    def test_raise_mode_names_failing_source(self):
        wf = Workflow()
        wf.add(_FailingSource("watcher"))
        wf.add(Collector("sink"))
        wf.connect("watcher", "out", "sink", "in")
        d = ProcessNetworkDirector(wf)
        with pytest.raises(ActorFiringError, match="watcher"):
            d.run()
        assert d.failures and d.failures[0][1] == "watcher"

    def test_degrade_mode_keeps_pipeline_running(self):
        tel = Telemetry()
        boom = _Boom("boom", lambda v, calls: v == 2)
        wf, d = self._pipeline(boom, on_error="degrade", telemetry=tel)
        d.run()
        assert [t.value for t in wf.actors["sink"].items] == [1, 3]
        assert [(f[1], f[0]) for f in d.failures] == [("boom", 1)]
        assert tel.metrics.counter("workflow.actor_errors").value == 1

    def test_director_retry_refires_with_same_inputs(self):
        tel = Telemetry()
        boom = _Boom("boom", lambda v, calls: calls == 1)  # first attempt only
        wf, d = self._pipeline(boom, n=2, actor_retries=1, telemetry=tel)
        d.run()
        assert [t.value for t in wf.actors["sink"].items] == [1, 2]
        assert d.failures == []
        assert tel.metrics.counter("workflow.actor_retries").value == 1
        assert tel.metrics.counter("workflow.actor_errors").value == 0

    def test_circuit_breaker_opens_and_half_opens(self):
        tel = Telemetry()
        boom = _Boom("boom", lambda v, calls: True)
        wf, d = self._pipeline(boom, n=6, on_error="degrade",
                               max_actor_failures=2, breaker_cooldown=2,
                               telemetry=tel)
        d.step_round()  # strike 1
        assert not d.circuit_open("boom")
        d.step_round()  # strike 2 -> breaker opens
        assert d.circuit_open("boom")
        assert boom.calls == 2
        assert tel.metrics.counter("workflow.breaker_opened").value == 1
        d.step_round()  # cooldown: skipped, tokens queue
        d.step_round()
        assert boom.calls == 2
        d.step_round()  # half-open trial firing fails -> re-trips
        assert boom.calls == 3
        assert d.circuit_open("boom")
        assert tel.metrics.counter("workflow.breaker_opened").value == 2

    def test_actor_timeout_recorded_post_hoc(self):
        tel = Telemetry()

        class _Slow(Actor):
            inputs = ["in"]
            outputs = ["out"]

            def fire(self, inputs):
                time.sleep(0.05)
                return {"out": inputs["in"]}

        wf = Workflow()
        wf.add(_Counter("src", 1))
        wf.add(_Slow("slow"))
        wf.add(Collector("sink"))
        wf.connect("src", "out", "slow", "in")
        wf.connect("slow", "out", "sink", "in")
        d = ProcessNetworkDirector(wf, on_error="degrade", actor_timeout=0.01,
                                   telemetry=tel)
        d.run()
        # the firing overran but its outputs were still delivered
        assert len(wf.actors["sink"].items) == 1
        assert any(f[1] == "slow" and "TimeoutError" in f[2] for f in d.failures)
        assert tel.metrics.counter("workflow.actor_errors").value == 1


class TestProvenance:
    def test_ancestor_closure(self):
        ps = ProvenanceStore()
        ps.record("b", "morph", inputs=("a1", "a2"))
        ps.record("c", "archive", inputs=("b",))
        assert ps.ancestors("c") == {"b", "a1", "a2"}

    def test_record_token(self):
        ps = ProvenanceStore()
        t = Token("x").derive("y", "convert").derive("z", "plot")
        ps.record_token("image.png", t)
        assert ps.activities_of("image.png") == ["plot"]
        assert len(ps) == 1

    def test_morph_provenance_tracks_all_parts(self):
        env = make_environment()
        simulate_s3d_run(env, n_checkpoints=1)
        wf, taps, d = run_s3d_workflow(env)
        token = taps["restart_done"].items[0]
        acts = [a for a, _ in token.provenance]
        assert "morph" in acts and "archive" in acts


class TestDashboard:
    def test_job_lifecycle(self):
        db = Dashboard()
        db.submit_job("123", "jaguar", "chen")
        db.set_job_state("123", "running")
        assert db.jobs_on("jaguar")[0].state == "running"
        with pytest.raises(ValueError):
            db.set_job_state("123", "exploded")

    def test_series_and_trace(self):
        db = Dashboard()
        db.update_series([
            {"step": 100, "variable": "T", "min": 300.0, "max": 1500.0},
            {"step": 200, "variable": "T", "min": 300.0, "max": 1600.0},
        ])
        steps, lo, hi = db.trace("T")
        assert steps == [100, 200]
        assert db.latest("T") == (200, 300.0, 1600.0)

    def test_annotation_requires_image(self):
        db = Dashboard()
        with pytest.raises(KeyError):
            db.annotate("img", "user", "note")
        db.register_image("img")
        db.annotate("img", "user", "nice flame")
        assert db.annotations["img"] == [("user", "nice flame")]

    def test_render_text(self):
        db = Dashboard()
        db.submit_job("1", "jaguar", "chen")
        db.update_series([{"step": 1, "variable": "rho", "min": 0.1, "max": 1.0}])
        text = db.render_text()
        assert "jaguar" in text and "rho" in text
