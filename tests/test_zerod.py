"""Tests for zero-dimensional reactors and ignition delay."""

import numpy as np
import pytest

from repro.chemistry import ConstPressureReactor, ConstVolumeReactor, ignition_delay
from repro.util.constants import P_ATM


class TestConstPressureReactor:
    def test_inert_stays_frozen(self, air_mech, air_y):
        reactor = ConstPressureReactor(air_mech, P_ATM)
        t, T, Y = reactor.integrate(800.0, air_y, 1e-3, n_out=10)
        np.testing.assert_allclose(T, 800.0, rtol=1e-9)
        np.testing.assert_allclose(Y[:, -1], air_y, atol=1e-12)

    def test_ignition_raises_temperature(self, h2_mech, h2_air_stoich):
        reactor = ConstPressureReactor(h2_mech, P_ATM)
        t, T, Y = reactor.integrate(1200.0, h2_air_stoich, 1e-3, n_out=50)
        assert T[-1] > 2000.0

    def test_mass_fractions_stay_normalized(self, h2_mech, h2_air_stoich):
        reactor = ConstPressureReactor(h2_mech, P_ATM)
        _, _, Y = reactor.integrate(1200.0, h2_air_stoich, 1e-3, n_out=20)
        np.testing.assert_allclose(Y.sum(axis=0), 1.0, atol=1e-6)

    def test_h2_consumed_o2_consumed(self, h2_mech, h2_air_stoich):
        reactor = ConstPressureReactor(h2_mech, P_ATM)
        _, _, Y = reactor.integrate(1300.0, h2_air_stoich, 1e-3, n_out=20)
        # equilibrium at ~2400 K leaves a few-percent H2 by dissociation
        assert Y[h2_mech.index("H2"), -1] < 0.2 * h2_air_stoich[h2_mech.index("H2")]
        assert Y[h2_mech.index("H2O"), -1] > 0.15


class TestConstVolumeReactor:
    def test_pressure_rises_on_ignition(self, h2_mech, h2_air_stoich):
        rho = h2_mech.density(P_ATM, 1200.0, h2_air_stoich)
        reactor = ConstVolumeReactor(h2_mech, rho)
        t, T, Y = reactor.integrate(1200.0, h2_air_stoich, 1e-3, n_out=20)
        p_end = h2_mech.pressure(rho, T[-1], Y[:, -1])
        assert T[-1] > 2000.0
        assert p_end > 1.5 * P_ATM

    def test_cv_hotter_than_cp(self, h2_mech, h2_air_stoich):
        """Constant-volume combustion reaches higher T than constant-p."""
        rho = h2_mech.density(P_ATM, 1200.0, h2_air_stoich)
        _, T_v, _ = ConstVolumeReactor(h2_mech, rho).integrate(
            1200.0, h2_air_stoich, 2e-3, n_out=20
        )
        _, T_p, _ = ConstPressureReactor(h2_mech, P_ATM).integrate(
            1200.0, h2_air_stoich, 2e-3, n_out=20
        )
        assert T_v[-1] > T_p[-1]


class TestIgnitionDelay:
    @pytest.mark.slow
    def test_monotone_decreasing_with_temperature(self, h2_mech, h2_air_stoich):
        """The autoignition physics behind §6: hotter mixtures ignite faster."""
        taus = [
            ignition_delay(h2_mech, T0, P_ATM, h2_air_stoich, t_end=0.05, n_out=500)
            for T0 in (1000.0, 1100.0, 1300.0)
        ]
        assert taus[0] > taus[1] > taus[2]
        assert np.isfinite(taus).all()

    def test_magnitude_at_1100k(self, h2_mech, h2_air_stoich):
        """Above crossover, H2/air ignites within ~30-300 us at 1 atm."""
        tau = ignition_delay(h2_mech, 1100.0, P_ATM, h2_air_stoich, t_end=0.01, n_out=1000)
        assert 1e-5 < tau < 1e-3

    def test_no_ignition_returns_inf(self, h2_mech, h2_air_stoich):
        tau = ignition_delay(h2_mech, 700.0, P_ATM, h2_air_stoich, t_end=1e-4)
        assert tau == np.inf

    def test_lean_hot_faster_than_stoich(self, h2_mech):
        """Fig 11's mechanism: mixing with 1100 K lean coflow ignites faster
        than colder, richer mixtures (shorter delay on the lean side)."""
        # lean mixture at the hot-coflow end of the mixing line
        def mix(z):
            """Mix fuel jet (65% H2 / 35% N2 at 400 K) with air coflow at 1100 K."""
            Y = np.zeros(h2_mech.n_species)
            X = np.zeros(h2_mech.n_species)
            X[h2_mech.index("H2")] = 0.65
            X[h2_mech.index("N2")] = 0.35
            y_fuel = h2_mech.mole_to_mass(X)
            y_air = np.zeros(h2_mech.n_species)
            y_air[h2_mech.index("O2")] = 0.233
            y_air[h2_mech.index("N2")] = 0.767
            Y = z * y_fuel + (1 - z) * y_air
            T = z * 400.0 + (1 - z) * 1100.0
            return T, Y

        t_lean, y_lean = mix(0.05)
        t_rich, y_rich = mix(0.4)
        tau_lean = ignition_delay(h2_mech, t_lean, P_ATM, y_lean, t_end=0.05, n_out=2000)
        tau_rich = ignition_delay(h2_mech, t_rich, P_ATM, y_rich, t_end=0.05, n_out=2000)
        assert tau_lean < tau_rich

    def test_delay_not_quantized_by_output_grid(self, h2_mech, h2_air_stoich):
        """Regression: the delay comes from a solve_ivp terminal event,
        not interpolation on an ``n_out`` output grid.  The old
        implementation sampled T(t) at ``n_out`` equispaced points and
        interpolated the crossing, biasing the delay by up to half a
        sample interval — so wildly different ``n_out`` values gave
        measurably different answers.  Now ``n_out`` must be inert."""
        taus = [
            ignition_delay(h2_mech, 1100.0, P_ATM, h2_air_stoich,
                           t_end=0.01, n_out=n)
            for n in (None, 7, 100000)
        ]
        assert taus[0] == taus[1] == taus[2]
        # and the event-located delay agrees with an independent tight
        # trajectory to far better than the old grid's half-interval
        # bias (t_end/2/500 = 1e-5 s at the historical default)
        reactor = ConstPressureReactor(h2_mech, P_ATM)
        t, T, _ = reactor.integrate(1100.0, h2_air_stoich, 2e-4,
                                    n_out=20001, rtol=1e-10, atol=1e-13)
        target = 1100.0 + 400.0
        k = int(np.argmax(T >= target))
        frac = (target - T[k - 1]) / (T[k] - T[k - 1])
        tau_grid = t[k - 1] + frac * (t[k] - t[k - 1])
        assert abs(taus[0] - tau_grid) < 1e-7

    def test_ho2_precedes_oh(self, h2_mech, h2_air_stoich):
        """HO2 is the autoignition precursor: it peaks before OH rises
        (the §6 flame-base marker result)."""
        reactor = ConstPressureReactor(h2_mech, P_ATM)
        t, T, Y = reactor.integrate(1050.0, h2_air_stoich, 2e-3, n_out=2000)
        ho2 = Y[h2_mech.index("HO2")]
        oh = Y[h2_mech.index("OH")]
        t_ho2_rise = t[np.argmax(ho2 > 0.2 * ho2.max())]
        t_oh_rise = t[np.argmax(oh > 0.2 * oh.max())]
        assert t_ho2_rise < t_oh_rise
